// Package trace is the MicroGrid's deterministic structured tracing
// subsystem: the queryable internal instrument the paper validates with
// Autopilot sensors (§5), generalized into typed events and spans over
// every layer of the stack (engine, processes, CPU scheduling, network,
// MPI, middleware, fault injection).
//
// All timestamps are *virtual* nanoseconds and every record carries a
// recorder-assigned sequence number, so the (time, seq) order — and
// therefore every export — is bit-for-bit deterministic for a given
// simulation seed, independent of wall clock, worker count, or host.
//
// Records land in a bounded ring buffer: when it fills, the oldest
// records are overwritten and a dropped-events counter advances. The
// counter is part of every export — truncation is never silent.
//
// Recording is gated per category by a bitmask with a strict
// zero-overhead-when-disabled fast path: a nil recorder or a masked-out
// category costs one branch at the call site and allocates nothing.
//
// The package deliberately imports nothing from the rest of the
// repository so that every layer (including the simulation engine
// itself) can emit into it.
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Category classifies events; categories form a bitmask so recording can
// be enabled per subsystem.
type Category uint32

const (
	// CatEngine traces discrete-event dispatch in the simulation core.
	CatEngine Category = 1 << iota
	// CatProc traces process lifecycle: spawn, kill, abort.
	CatProc
	// CatCPU traces CPU scheduling: slices, controller quanta, load.
	CatCPU
	// CatNet traces the packet path: per-hop traversal, loss, drops.
	CatNet
	// CatLink traces link state: up/down/degrade/restore, node crashes.
	CatLink
	// CatMPI traces message passing: send, recv, barrier.
	CatMPI
	// CatGlobus traces middleware: submit, job states, retry, failover.
	CatGlobus
	// CatChaos traces fault-injection firings.
	CatChaos
	// CatLog carries legacy printf-style Tracef records.
	CatLog

	// CatAll enables everything.
	CatAll Category = 1<<iota - 1
)

// catNames maps the single-bit categories to their wire names, in bit
// order.
var catNames = []struct {
	c    Category
	name string
}{
	{CatEngine, "engine"},
	{CatProc, "proc"},
	{CatCPU, "cpu"},
	{CatNet, "net"},
	{CatLink, "link"},
	{CatMPI, "mpi"},
	{CatGlobus, "globus"},
	{CatChaos, "chaos"},
	{CatLog, "log"},
}

// String returns the category's wire name ("cpu", "net", ...); multi-bit
// masks render as a comma-joined list.
func (c Category) String() string {
	var parts []string
	for _, cn := range catNames {
		if c&cn.c != 0 {
			parts = append(parts, cn.name)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// ParseCategories parses a comma-separated category list ("net,mpi",
// "all", "all,-engine" to subtract) into a mask.
func ParseCategories(s string) (Category, error) {
	var mask Category
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		neg := strings.HasPrefix(tok, "-")
		if neg {
			tok = tok[1:]
		}
		var bit Category
		if tok == "all" {
			bit = CatAll
		} else {
			for _, cn := range catNames {
				if cn.name == tok {
					bit = cn.c
					break
				}
			}
			if bit == 0 {
				return 0, fmt.Errorf("trace: unknown category %q", tok)
			}
		}
		if neg {
			mask &^= bit
		} else {
			mask |= bit
		}
	}
	return mask, nil
}

// Event is one trace record. T is virtual nanoseconds; for spans it is
// the span's start and Dur its length, for instants Dur is zero. Seq is
// the recorder-assigned emission sequence — (T, Seq) need not be sorted
// in the buffer (a span is emitted when it *ends*), but Seq alone is the
// deterministic total emission order.
type Event struct {
	T    int64
	Seq  uint64
	Cat  Category
	Name string
	// Attributes; zero values mean "not applicable". Rank and Peer are
	// only meaningful on CatMPI records (rank 0 is encoded as the zero
	// value on the wire).
	Host   string
	Link   string
	Rank   int
	Peer   int
	Bytes  int64
	Dur    int64
	Detail string
}

// Attr carries an Event's optional attributes to the emit calls.
type Attr struct {
	Host   string
	Link   string
	Rank   int
	Peer   int
	Bytes  int64
	Detail string
}

// Recorder collects events into a bounded ring buffer. It is not safe
// for concurrent use; in the MicroGrid one recorder belongs to one
// simulation engine, whose event loop is single-threaded.
type Recorder struct {
	// Label identifies this recorder's run in multi-run exports.
	Label string

	mask    Category
	now     func() int64
	sink    func(Event)
	buf     []Event
	start   int // index of the oldest retained event
	count   int // number of retained events
	seq     uint64
	dropped uint64
}

// DefaultBufSize is the default ring capacity in events.
const DefaultBufSize = 1 << 16

// NewRecorder returns a recorder with the given ring capacity
// (DefaultBufSize if size <= 0) and initial category mask.
func NewRecorder(size int, mask Category) *Recorder {
	if size <= 0 {
		size = DefaultBufSize
	}
	return &Recorder{mask: mask, buf: make([]Event, size)}
}

// SetClock installs the virtual-time source (the owning engine's now).
func (r *Recorder) SetClock(now func() int64) { r.now = now }

// SetSink installs fn to observe every retained event as it is emitted
// (nil removes it). The legacy printf tracer shim uses this.
func (r *Recorder) SetSink(fn func(Event)) { r.sink = fn }

// Enabled reports whether category c is being recorded. It is nil-safe:
// call sites guard their attribute construction with it, so a simulation
// without tracing pays exactly this one branch.
func (r *Recorder) Enabled(c Category) bool {
	return r != nil && r.mask&c != 0
}

// Mask returns the current category mask.
func (r *Recorder) Mask() Category { return r.mask }

// Enable adds categories to the mask.
func (r *Recorder) Enable(c Category) { r.mask |= c }

// Disable removes categories from the mask.
func (r *Recorder) Disable(c Category) { r.mask &^= c }

// BufSize returns the ring capacity in events.
func (r *Recorder) BufSize() int { return len(r.buf) }

// Emitted returns how many events were emitted in total (retained plus
// dropped).
func (r *Recorder) Emitted() uint64 { return r.seq }

// Dropped returns how many events the ring has overwritten. Exports
// surface this count so truncation is never silent.
func (r *Recorder) Dropped() uint64 { return r.dropped }

// Event records an instant event at the current virtual time. Masked-out
// categories return immediately.
func (r *Recorder) Event(cat Category, name string, a Attr) {
	if r == nil || r.mask&cat == 0 {
		return
	}
	var t int64
	if r.now != nil {
		t = r.now()
	}
	r.push(Event{
		T: t, Cat: cat, Name: name,
		Host: a.Host, Link: a.Link, Rank: a.Rank, Peer: a.Peer,
		Bytes: a.Bytes, Detail: a.Detail,
	})
}

// Span records a completed span starting at virtual time start (ns) and
// lasting dur. Spans are emitted when they end, so their Seq reflects
// completion order while T is the start.
func (r *Recorder) Span(cat Category, name string, start, dur int64, a Attr) {
	if r == nil || r.mask&cat == 0 {
		return
	}
	r.push(Event{
		T: start, Dur: dur, Cat: cat, Name: name,
		Host: a.Host, Link: a.Link, Rank: a.Rank, Peer: a.Peer,
		Bytes: a.Bytes, Detail: a.Detail,
	})
}

// push assigns the sequence number and stores ev, overwriting the oldest
// record when the ring is full.
func (r *Recorder) push(ev Event) {
	r.seq++
	ev.Seq = r.seq
	if r.count == len(r.buf) {
		r.buf[r.start] = ev
		r.start = (r.start + 1) % len(r.buf)
		r.dropped++
	} else {
		r.buf[(r.start+r.count)%len(r.buf)] = ev
		r.count++
	}
	if r.sink != nil {
		r.sink(ev)
	}
}

// Events returns the retained events in emission order (oldest first).
func (r *Recorder) Events() []Event {
	out := make([]Event, 0, r.count)
	for i := 0; i < r.count; i++ {
		out = append(out, r.buf[(r.start+i)%len(r.buf)])
	}
	return out
}

// Run is one recorder's snapshot for export and analysis.
type Run struct {
	Label   string
	BufSize int
	Emitted uint64
	Dropped uint64
	Events  []Event
}

// Snapshot captures the recorder's current contents.
func (r *Recorder) Snapshot() Run {
	return Run{
		Label:   r.Label,
		BufSize: len(r.buf),
		Emitted: r.seq,
		Dropped: r.dropped,
		Events:  r.Events(),
	}
}

// Canonicalize returns r with its events in the partition-independent
// canonical order: sorted by start time, ties broken by full content
// (category, name, attributes, size, duration, detail), and Seq
// renumbered in that order. The tiebreak never consults recorder-local
// sequence numbers, and events with fully identical content are
// interchangeable, so one serial recorder and N per-shard recorders that
// observed the same model produce byte-identical canonical runs. Exports
// that must be stable under re-partitioning (MergedTrace, the campaign
// trace JSONL) run every snapshot through this.
func Canonicalize(r Run) Run {
	evs := append([]Event(nil), r.Events...)
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := &evs[i], &evs[j]
		switch {
		case a.T != b.T:
			return a.T < b.T
		case a.Cat != b.Cat:
			return a.Cat < b.Cat
		case a.Name != b.Name:
			return a.Name < b.Name
		case a.Host != b.Host:
			return a.Host < b.Host
		case a.Link != b.Link:
			return a.Link < b.Link
		case a.Rank != b.Rank:
			return a.Rank < b.Rank
		case a.Peer != b.Peer:
			return a.Peer < b.Peer
		case a.Bytes != b.Bytes:
			return a.Bytes < b.Bytes
		case a.Dur != b.Dur:
			return a.Dur < b.Dur
		default:
			return a.Detail < b.Detail
		}
	})
	for i := range evs {
		evs[i].Seq = uint64(i + 1)
	}
	r.Events = evs
	return r
}

// MergeRuns combines per-shard snapshots of one logical run into a single
// canonical Run: label and buffer size come from the first snapshot,
// emitted/dropped counters are summed, and the event union is
// canonicalized.
func MergeRuns(runs []Run) Run {
	var out Run
	for i, r := range runs {
		if i == 0 {
			out.Label = r.Label
			out.BufSize = r.BufSize
		}
		out.Emitted += r.Emitted
		out.Dropped += r.Dropped
		out.Events = append(out.Events, r.Events...)
	}
	return Canonicalize(out)
}

// SortByTime orders events by (T, Seq) — the deterministic total order
// analyses use (spans are buffered in completion order, not start order).
func SortByTime(events []Event) {
	sort.Slice(events, func(i, j int) bool {
		if events[i].T != events[j].T {
			return events[i].T < events[j].T
		}
		return events[i].Seq < events[j].Seq
	})
}
