package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseCategories(t *testing.T) {
	cases := []struct {
		in   string
		want Category
		err  bool
	}{
		{"all", CatAll, false},
		{"", 0, false},
		{"net,mpi", CatNet | CatMPI, false},
		{"all,-engine", CatAll &^ CatEngine, false},
		{" cpu , link ", CatCPU | CatLink, false},
		{"bogus", 0, true},
	}
	for _, c := range cases {
		got, err := ParseCategories(c.in)
		if (err != nil) != c.err {
			t.Fatalf("ParseCategories(%q) err=%v want err=%v", c.in, err, c.err)
		}
		if err == nil && got != c.want {
			t.Errorf("ParseCategories(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if CatAll != 1<<9-1 {
		t.Fatalf("CatAll = %d, want 511", CatAll)
	}
}

func TestCategoryString(t *testing.T) {
	if got := (CatNet | CatMPI).String(); got != "net,mpi" {
		t.Errorf("String() = %q, want %q", got, "net,mpi")
	}
	if got := Category(0).String(); got != "none" {
		t.Errorf("String() = %q, want %q", got, "none")
	}
	// Every single-bit category must round-trip through parse.
	for _, cn := range catNames {
		got, err := ParseCategories(cn.c.String())
		if err != nil || got != cn.c {
			t.Errorf("round-trip %v: got %v err %v", cn.c, got, err)
		}
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled(CatNet) {
		t.Fatal("nil recorder reported enabled")
	}
	// Emits on a nil recorder must be no-ops, not panics.
	r.Event(CatNet, "hop", Attr{})
	r.Span(CatCPU, "slice", 0, 1, Attr{})
}

func TestRingDropCounting(t *testing.T) {
	r := NewRecorder(4, CatAll)
	var clock int64
	r.SetClock(func() int64 { return clock })
	for i := 0; i < 10; i++ {
		clock = int64(i)
		r.Event(CatNet, "hop", Attr{Bytes: int64(i)})
	}
	if r.Emitted() != 10 {
		t.Fatalf("Emitted = %d, want 10", r.Emitted())
	}
	if r.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", r.Dropped())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	// Oldest-first, and the oldest retained is emission #7 (t=6).
	for i, ev := range evs {
		if ev.T != int64(6+i) || ev.Seq != uint64(7+i) {
			t.Errorf("event %d: T=%d Seq=%d, want T=%d Seq=%d", i, ev.T, ev.Seq, 6+i, 7+i)
		}
	}
}

func TestMaskGating(t *testing.T) {
	r := NewRecorder(16, CatNet)
	r.Event(CatCPU, "slice", Attr{})
	if r.Emitted() != 0 {
		t.Fatal("masked-out category was recorded")
	}
	r.Enable(CatCPU)
	r.Event(CatCPU, "slice", Attr{})
	r.Disable(CatCPU)
	r.Event(CatCPU, "slice", Attr{})
	if r.Emitted() != 1 {
		t.Fatalf("Emitted = %d, want 1", r.Emitted())
	}
}

func sampleRuns() []Run {
	r := NewRecorder(64, CatAll)
	r.Label = "sample"
	var clock int64
	r.SetClock(func() int64 { return clock })
	clock = 10
	r.Event(CatMPI, "send", Attr{Host: "h0", Rank: 0, Peer: 1, Bytes: 128})
	clock = 30
	r.Event(CatMPI, "recv", Attr{Host: "h1", Rank: 1, Peer: 0, Bytes: 128})
	r.Span(CatNet, "hop", 12, 15, Attr{Link: "h0-h1", Bytes: 128})
	clock = 50
	r.Event(CatMPI, "send", Attr{Host: "h1", Rank: 1, Peer: 0, Bytes: 64})
	clock = 90
	r.Event(CatMPI, "recv", Attr{Host: "h0", Rank: 0, Peer: 1, Bytes: 64})
	r.Span(CatCPU, "slice", 30, 20, Attr{Host: "h1", Detail: "rank1"})
	return []Run{r.Snapshot()}
}

func TestJSONLRoundTrip(t *testing.T) {
	runs := sampleRuns()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, runs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("rounds = %d, want 1", len(got))
	}
	g, w := got[0], runs[0]
	if g.Label != w.Label || g.BufSize != w.BufSize || g.Emitted != w.Emitted || g.Dropped != w.Dropped {
		t.Fatalf("run header/footer mismatch: %+v vs %+v", g, w)
	}
	if len(g.Events) != len(w.Events) {
		t.Fatalf("events = %d, want %d", len(g.Events), len(w.Events))
	}
	for i := range g.Events {
		if g.Events[i] != w.Events[i] {
			t.Errorf("event %d: %+v != %+v", i, g.Events[i], w.Events[i])
		}
	}
}

func TestExportDeterminism(t *testing.T) {
	runs := sampleRuns()
	var a, b, ca, cb bytes.Buffer
	if err := WriteJSONL(&a, runs); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&b, runs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("WriteJSONL is not deterministic")
	}
	if err := WriteChrome(&ca, runs); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&cb, runs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca.Bytes(), cb.Bytes()) {
		t.Fatal("WriteChrome is not deterministic")
	}
	if !strings.Contains(ca.String(), `"dropped_events":"0"`) {
		t.Error("Chrome export missing dropped_events counter")
	}
}

func TestSummarySurfacesDrops(t *testing.T) {
	r := NewRecorder(2, CatAll)
	r.Label = "drops"
	for i := 0; i < 5; i++ {
		r.Event(CatNet, "hop", Attr{})
	}
	out := Summary([]Run{r.Snapshot()})
	if !strings.Contains(out, "dropped 3") {
		t.Fatalf("summary does not surface dropped count:\n%s", out)
	}
	if !strings.Contains(out, "WARNING") {
		t.Fatalf("summary does not warn on drops:\n%s", out)
	}
}

func TestCriticalPath(t *testing.T) {
	run := sampleRuns()[0]
	steps, ok := CriticalPath(run)
	if !ok {
		t.Fatal("no critical path found")
	}
	// Chain: send@10 r0 -> recv@30 r1 (message), recv@30..send@50 r1
	// (compute), send@50 r1 -> recv@90 r0 (message).
	want := []PathStep{
		{Kind: "message", Rank: 0, Peer: 1, From: 10, To: 30},
		{Kind: "compute", Rank: 1, Peer: 1, From: 30, To: 50},
		{Kind: "message", Rank: 1, Peer: 0, From: 50, To: 90},
	}
	if len(steps) != len(want) {
		t.Fatalf("steps = %+v, want %+v", steps, want)
	}
	for i := range want {
		if steps[i] != want[i] {
			t.Errorf("step %d = %+v, want %+v", i, steps[i], want[i])
		}
	}
	out := FormatCriticalPath(run, 0)
	if !strings.Contains(out, "message rank 1 -> rank 0") {
		t.Errorf("unexpected critical-path rendering:\n%s", out)
	}
}

// TestCriticalPathDroppedSendsTerminate pins the walk's termination
// when ring-buffer drops misalign FIFO matching: each rank's retained
// recv pairs with the *other* rank's later send (the earlier sends were
// overwritten), so both match edges point forward in the timeline.
// Following them used to cycle forever; they must be skipped.
func TestCriticalPathDroppedSendsTerminate(t *testing.T) {
	r := NewRecorder(64, CatAll)
	r.Label = "dropped-sends"
	var clock int64
	r.SetClock(func() int64 { return clock })
	clock = 10
	r.Event(CatMPI, "recv", Attr{Host: "h0", Rank: 0, Peer: 1})
	clock = 20
	r.Event(CatMPI, "recv", Attr{Host: "h1", Rank: 1, Peer: 0})
	clock = 30
	r.Event(CatMPI, "send", Attr{Host: "h0", Rank: 0, Peer: 1})
	clock = 40
	r.Event(CatMPI, "send", Attr{Host: "h1", Rank: 1, Peer: 0})
	steps, ok := CriticalPath(r.Snapshot())
	if !ok {
		t.Fatal("no critical path found")
	}
	// send@40 walks back to rank 1's recv@20; its only match is the
	// forward edge to send@30, so the chain ends there as compute.
	want := []PathStep{{Kind: "compute", Rank: 1, Peer: 1, From: 20, To: 40}}
	if len(steps) != len(want) || steps[0] != want[0] {
		t.Fatalf("steps = %+v, want %+v", steps, want)
	}
}

func TestLinkAndHostReports(t *testing.T) {
	run := sampleRuns()[0]
	links := LinkReport(run, 10)
	if !strings.Contains(links, "h0-h1") || !strings.Contains(links, "1 pkts") {
		t.Errorf("link report missing hop aggregation:\n%s", links)
	}
	hosts := HostReport(run)
	if !strings.Contains(hosts, "h1") || !strings.Contains(hosts, "rank1") {
		t.Errorf("host report missing slice aggregation:\n%s", hosts)
	}
}

func TestSortByTime(t *testing.T) {
	evs := []Event{
		{T: 5, Seq: 3},
		{T: 1, Seq: 2},
		{T: 5, Seq: 1},
	}
	SortByTime(evs)
	if evs[0].Seq != 2 || evs[1].Seq != 1 || evs[2].Seq != 3 {
		t.Fatalf("bad order: %+v", evs)
	}
}

func BenchmarkRecorderDisabled(b *testing.B) {
	r := NewRecorder(1024, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if r.Enabled(CatNet) {
			r.Event(CatNet, "hop", Attr{Bytes: 1})
		}
	}
}

func BenchmarkRecorderEnabled(b *testing.B) {
	r := NewRecorder(1024, CatAll)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Event(CatNet, "hop", Attr{Bytes: 1})
	}
}
