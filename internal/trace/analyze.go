package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Analyses over trace runs. These back the cmd/mgridtrace subcommands
// but are plain functions over []Run so tests (and other tools) can use
// them directly. All output ordering is deterministic: names sort
// lexically, ranks and times numerically.

// Summary renders per-run event counts by category and name, the traced
// time range, and — never silently — the dropped-events counter.
func Summary(runs []Run) string {
	var b strings.Builder
	for _, run := range runs {
		fmt.Fprintf(&b, "run %s (buffer %d events)\n", orUnnamed(run.Label), run.BufSize)
		if len(run.Events) == 0 {
			fmt.Fprintf(&b, "  no events\n")
		} else {
			lo, hi := run.Events[0].T, run.Events[0].T
			type key struct {
				cat  string
				name string
			}
			counts := map[key]int{}
			var keys []key
			for i := range run.Events {
				ev := &run.Events[i]
				if ev.T < lo {
					lo = ev.T
				}
				if end := ev.T + ev.Dur; end > hi {
					hi = end
				}
				k := key{ev.Cat.String(), ev.Name}
				if counts[k] == 0 {
					keys = append(keys, k)
				}
				counts[k]++
			}
			sort.Slice(keys, func(i, j int) bool {
				if keys[i].cat != keys[j].cat {
					return keys[i].cat < keys[j].cat
				}
				return keys[i].name < keys[j].name
			})
			fmt.Fprintf(&b, "  %d events retained, virtual span %s .. %s\n",
				len(run.Events), fmtNS(lo), fmtNS(hi))
			for _, k := range keys {
				fmt.Fprintf(&b, "  %-8s %-12s %8d\n", k.cat, k.name, counts[k])
			}
		}
		fmt.Fprintf(&b, "  emitted %d, dropped %d", run.Emitted, run.Dropped)
		if run.Dropped > 0 {
			fmt.Fprintf(&b, "  [WARNING: ring buffer overflowed; raise -trace-buf]")
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

func fmtNS(ns int64) string {
	return fmt.Sprintf("%.6fs", float64(ns)/1e9)
}

// PathStep is one hop of a critical path.
type PathStep struct {
	// Kind is "compute" (time on one rank between two of its events) or
	// "message" (a matched send→recv flight).
	Kind     string
	Rank     int
	Peer     int
	From, To int64
}

// CriticalPath walks the longest dependency chain through a run's MPI
// events: starting from the last MPI event, each receive jumps to its
// matched send (message time), every other step charges the gap to
// computation on that rank. Send k from rank r to rank d matches receive
// k on rank d from rank r (connections are FIFO). Returns the chain in
// chronological order; ok is false when the run has no MPI events.
func CriticalPath(run Run) (steps []PathStep, ok bool) {
	type evref struct {
		t    int64
		seq  uint64
		name string
		rank int
		peer int
	}
	var mpi []evref
	for i := range run.Events {
		ev := &run.Events[i]
		if ev.Cat != CatMPI {
			continue
		}
		// Span events (barrier) enter the timeline at their end.
		mpi = append(mpi, evref{t: ev.T + ev.Dur, seq: ev.Seq, name: ev.Name, rank: ev.Rank, peer: ev.Peer})
	}
	if len(mpi) == 0 {
		return nil, false
	}
	sort.Slice(mpi, func(i, j int) bool {
		if mpi[i].t != mpi[j].t {
			return mpi[i].t < mpi[j].t
		}
		return mpi[i].seq < mpi[j].seq
	})
	// Per-rank event indices and FIFO send/recv matching.
	byRank := map[int][]int{}
	type pair struct{ a, b int }
	sends := map[pair][]int{} // (src,dst) -> indices into mpi
	posInRank := make([]int, len(mpi))
	for i, e := range mpi {
		posInRank[i] = len(byRank[e.rank])
		byRank[e.rank] = append(byRank[e.rank], i)
		if e.name == "send" {
			sends[pair{e.rank, e.peer}] = append(sends[pair{e.rank, e.peer}], i)
		}
	}
	recvMatch := make([]int, len(mpi)) // recv index -> matched send index (-1 none)
	taken := map[pair]int{}
	for i, e := range mpi {
		recvMatch[i] = -1
		if e.name != "recv" {
			continue
		}
		k := pair{e.peer, e.rank}
		if n := taken[k]; n < len(sends[k]) {
			recvMatch[i] = sends[k][n]
			taken[k] = n + 1
		}
	}
	// Walk backwards from the last event. A followed match must lie
	// strictly earlier in the timeline: when the ring buffer dropped
	// events, FIFO matching can pair a recv with a *later* send, and
	// following that edge would walk forward and cycle. Such a recv
	// falls through to the compute step, so cur strictly decreases and
	// the walk always terminates.
	cur := len(mpi) - 1
	for cur >= 0 {
		e := mpi[cur]
		if e.name == "recv" && recvMatch[cur] >= 0 && recvMatch[cur] < cur {
			s := recvMatch[cur]
			steps = append(steps, PathStep{
				Kind: "message", Rank: mpi[s].rank, Peer: e.rank,
				From: mpi[s].t, To: e.t,
			})
			cur = s
			continue
		}
		p := posInRank[cur]
		if p == 0 {
			break
		}
		prev := byRank[e.rank][p-1]
		steps = append(steps, PathStep{
			Kind: "compute", Rank: e.rank, Peer: e.rank,
			From: mpi[prev].t, To: e.t,
		})
		cur = prev
	}
	// Reverse into chronological order.
	for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
		steps[i], steps[j] = steps[j], steps[i]
	}
	return steps, true
}

// FormatCriticalPath renders the chain plus a compute/message time
// decomposition. maxSteps bounds the printed chain (0 = all); elided
// steps are counted, not hidden.
func FormatCriticalPath(run Run, maxSteps int) string {
	steps, ok := CriticalPath(run)
	var b strings.Builder
	fmt.Fprintf(&b, "run %s\n", orUnnamed(run.Label))
	if !ok {
		fmt.Fprintf(&b, "  no MPI events in trace (enable category \"mpi\")\n")
		return b.String()
	}
	var compute, message int64
	for _, s := range steps {
		if s.Kind == "message" {
			message += s.To - s.From
		} else {
			compute += s.To - s.From
		}
	}
	total := compute + message
	fmt.Fprintf(&b, "  critical path: %s over %d steps (compute %s, message %s)\n",
		fmtNS(total), len(steps), fmtNS(compute), fmtNS(message))
	if run.Dropped > 0 {
		fmt.Fprintf(&b, "  [WARNING: %d events dropped; path reflects the retained window only]\n", run.Dropped)
	}
	show := len(steps)
	if maxSteps > 0 && show > maxSteps {
		show = maxSteps
	}
	for i := 0; i < show; i++ {
		s := steps[i]
		switch s.Kind {
		case "message":
			fmt.Fprintf(&b, "  %s .. %s  message rank %d -> rank %d (%s)\n",
				fmtNS(s.From), fmtNS(s.To), s.Rank, s.Peer, fmtNS(s.To-s.From))
		default:
			fmt.Fprintf(&b, "  %s .. %s  compute rank %d (%s)\n",
				fmtNS(s.From), fmtNS(s.To), s.Rank, fmtNS(s.To-s.From))
		}
	}
	if show < len(steps) {
		fmt.Fprintf(&b, "  ... %d more steps\n", len(steps)-show)
	}
	return b.String()
}

// LinkReport renders per-link traffic from "hop" spans (CatNet): packet
// and byte counts, serialization busy time, mean utilization over the
// traced span, and a bucketed utilization timeline. Loss and drop
// instants are tallied alongside. buckets <= 0 defaults to 20.
func LinkReport(run Run, buckets int) string {
	if buckets <= 0 {
		buckets = 20
	}
	var b strings.Builder
	fmt.Fprintf(&b, "run %s\n", orUnnamed(run.Label))
	type linkStat struct {
		hops, lost, dropped int64
		bytes, busy         int64
		timeline            []int64 // busy ns per bucket
	}
	stats := map[string]*linkStat{}
	var names []string
	var lo, hi int64
	first := true
	for i := range run.Events {
		ev := &run.Events[i]
		if ev.Cat != CatNet || ev.Link == "" {
			continue
		}
		if first || ev.T < lo {
			lo = ev.T
		}
		if end := ev.T + ev.Dur; first || end > hi {
			hi = end
		}
		first = false
		st := stats[ev.Link]
		if st == nil {
			st = &linkStat{timeline: make([]int64, buckets)}
			stats[ev.Link] = st
			names = append(names, ev.Link)
		}
		switch ev.Name {
		case "hop":
			st.hops++
			st.bytes += ev.Bytes
			st.busy += ev.Dur
		case "loss":
			st.lost++
		case "drop":
			st.dropped++
		}
	}
	if first {
		fmt.Fprintf(&b, "  no net events in trace (enable category \"net\")\n")
		return b.String()
	}
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	bucketNS := (span + int64(buckets) - 1) / int64(buckets)
	for i := range run.Events {
		ev := &run.Events[i]
		if ev.Cat != CatNet || ev.Name != "hop" || ev.Link == "" {
			continue
		}
		st := stats[ev.Link]
		// Distribute the serialization span over the buckets it overlaps.
		for t := ev.T; t < ev.T+ev.Dur; {
			bi := (t - lo) / bucketNS
			if bi >= int64(buckets) {
				bi = int64(buckets) - 1
			}
			bEnd := lo + (bi+1)*bucketNS
			seg := ev.T + ev.Dur
			if bEnd < seg {
				seg = bEnd
			}
			st.timeline[bi] += seg - t
			t = seg
		}
	}
	sort.Strings(names)
	fmt.Fprintf(&b, "  span %s .. %s, %d buckets of %s\n", fmtNS(lo), fmtNS(hi), buckets, fmtNS(bucketNS))
	for _, name := range names {
		st := stats[name]
		util := float64(st.busy) / float64(span)
		fmt.Fprintf(&b, "  %-28s %8d pkts %12d B  busy %5.1f%%  lost %d dropped %d\n",
			name, st.hops, st.bytes, 100*util, st.lost, st.dropped)
		if st.hops > 0 {
			fmt.Fprintf(&b, "    timeline [")
			for _, busy := range st.timeline {
				u := float64(busy) / float64(bucketNS)
				fmt.Fprintf(&b, "%s", utilGlyph(u))
			}
			fmt.Fprintf(&b, "]\n")
		}
	}
	if run.Dropped > 0 {
		fmt.Fprintf(&b, "  [WARNING: %d events dropped; counts reflect the retained window only]\n", run.Dropped)
	}
	return b.String()
}

// utilGlyph maps a utilization fraction to a 0-9 digit column (stable in
// any terminal, unlike block glyphs).
func utilGlyph(u float64) string {
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	return string(rune('0' + int(u*9.999)))
}

// HostReport renders per-host CPU busy fractions from "slice" spans
// (CatCPU) — actual scheduled CPU time per physical host — with a
// per-task breakdown.
func HostReport(run Run) string {
	var b strings.Builder
	fmt.Fprintf(&b, "run %s\n", orUnnamed(run.Label))
	type hostStat struct {
		busy  int64
		tasks map[string]int64
	}
	stats := map[string]*hostStat{}
	var names []string
	var lo, hi int64
	first := true
	for i := range run.Events {
		ev := &run.Events[i]
		if ev.Cat != CatCPU || ev.Name != "slice" || ev.Host == "" {
			continue
		}
		if first || ev.T < lo {
			lo = ev.T
		}
		if end := ev.T + ev.Dur; first || end > hi {
			hi = end
		}
		first = false
		st := stats[ev.Host]
		if st == nil {
			st = &hostStat{tasks: map[string]int64{}}
			stats[ev.Host] = st
			names = append(names, ev.Host)
		}
		st.busy += ev.Dur
		st.tasks[ev.Detail] += ev.Dur
	}
	if first {
		fmt.Fprintf(&b, "  no cpu slice events in trace (enable category \"cpu\")\n")
		return b.String()
	}
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	sort.Strings(names)
	fmt.Fprintf(&b, "  span %s .. %s\n", fmtNS(lo), fmtNS(hi))
	for _, name := range names {
		st := stats[name]
		fmt.Fprintf(&b, "  %-20s busy %5.1f%% (%s)\n", name, 100*float64(st.busy)/float64(span), fmtNS(st.busy))
		var tasks []string
		for t := range st.tasks {
			tasks = append(tasks, t)
		}
		sort.Slice(tasks, func(i, j int) bool {
			if st.tasks[tasks[i]] != st.tasks[tasks[j]] {
				return st.tasks[tasks[i]] > st.tasks[tasks[j]]
			}
			return tasks[i] < tasks[j]
		})
		for _, t := range tasks {
			label := t
			if label == "" {
				label = "(unnamed)"
			}
			fmt.Fprintf(&b, "    %-24s %5.1f%%\n", label, 100*float64(st.tasks[t])/float64(span))
		}
	}
	if run.Dropped > 0 {
		fmt.Fprintf(&b, "  [WARNING: %d events dropped; fractions reflect the retained window only]\n", run.Dropped)
	}
	return b.String()
}

// ShardSummary attributes a run's events to PDES shards through a
// node→shard placement (e.g. core.PartitionPreview's): per shard it
// reports the event count, the busy virtual time (summed span
// durations), and the cross-shard sends — events on links whose
// endpoints land on different shards, charged to the source shard.
// Events naming no known node fall in the "-" bucket. The merged trace
// itself is partition-independent; this view shows how a partitioned
// engine would split the same work.
func ShardSummary(runs []Run, shardOf map[string]int) string {
	var b strings.Builder
	for _, run := range runs {
		fmt.Fprintf(&b, "run %s\n", orUnnamed(run.Label))
		type stat struct {
			events int
			busy   int64
			cross  int
		}
		stats := map[int]*stat{}
		get := func(shard int) *stat {
			st := stats[shard]
			if st == nil {
				st = &stat{}
				stats[shard] = st
			}
			return st
		}
		unattributed := &stat{}
		for i := range run.Events {
			ev := &run.Events[i]
			st := unattributed
			cross := false
			if ev.Link != "" {
				src, dst, ok := strings.Cut(ev.Link, "->")
				ss, sok := shardOf[src]
				if ok && sok {
					st = get(ss)
					if ds, dok := shardOf[dst]; dok && ds != ss {
						cross = true
					}
				}
			} else if ev.Host != "" {
				if s, ok := shardOf[ev.Host]; ok {
					st = get(s)
				}
			}
			st.events++
			st.busy += ev.Dur
			if cross {
				st.cross++
			}
		}
		shards := make([]int, 0, len(stats))
		for s := range stats {
			shards = append(shards, s)
		}
		sort.Ints(shards)
		fmt.Fprintf(&b, "  %-6s %10s %14s %18s\n", "shard", "events", "busy", "cross-shard sends")
		for _, s := range shards {
			st := stats[s]
			fmt.Fprintf(&b, "  %-6d %10d %14s %18d\n", s, st.events, fmtNS(st.busy), st.cross)
		}
		if unattributed.events > 0 {
			fmt.Fprintf(&b, "  %-6s %10d %14s %18d\n", "-", unattributed.events, fmtNS(unattributed.busy), unattributed.cross)
		}
	}
	return b.String()
}
