// Package globus is the Grid middleware substrate the MicroGrid runs
// underneath applications: a Globus-1.1-shaped stack with gatekeepers,
// jobmanagers, an RSL subset, a gridmap authorization file, and GIS (MDS)
// registration. As in the paper, "all gatekeeper, jobmanager and client
// processes run on virtual hosts", so job submission crosses from the
// physical into the virtual domain through the virtual gatekeeper, and
// process creation is captured through the Globus resource-management
// mechanisms.
package globus

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// RSL is a parsed Resource Specification Language request — the
// "&(attribute=value)..." conjunctions Globus GRAM used.
type RSL struct {
	attrs map[string]string
	order []string
}

// NewRSL builds an RSL from attribute pairs.
func NewRSL(pairs ...[2]string) *RSL {
	r := &RSL{attrs: make(map[string]string)}
	for _, p := range pairs {
		r.Set(p[0], p[1])
	}
	return r
}

// Set assigns an attribute.
func (r *RSL) Set(key, value string) *RSL {
	k := strings.ToLower(key)
	if _, ok := r.attrs[k]; !ok {
		r.order = append(r.order, k)
	}
	r.attrs[k] = value
	return r
}

// Get returns an attribute value ("" if absent).
func (r *RSL) Get(key string) string { return r.attrs[strings.ToLower(key)] }

// Executable returns the executable attribute.
func (r *RSL) Executable() string { return r.Get("executable") }

// Count returns the process count (default 1).
func (r *RSL) Count() int {
	if s := r.Get("count"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 1
}

// MaxWallTime returns the maxwalltime attribute in virtual seconds
// (0 = unlimited). GRAM's maxwalltime was minutes; seconds suit the
// short experiment timescales here.
func (r *RSL) MaxWallTime() float64 {
	if s := r.Get("maxwalltime"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0
}

// Arguments returns the space-split arguments attribute.
func (r *RSL) Arguments() []string {
	s := r.Get("arguments")
	if s == "" {
		return nil
	}
	return strings.Fields(s)
}

// String renders the canonical "&(k=v)(k=v)" form.
func (r *RSL) String() string {
	var b strings.Builder
	b.WriteString("&")
	for _, k := range r.order {
		fmt.Fprintf(&b, "(%s=%s)", k, r.attrs[k])
	}
	return b.String()
}

// Attrs returns attribute keys in insertion order.
func (r *RSL) Attrs() []string { return append([]string(nil), r.order...) }

// SortedAttrs returns attribute keys sorted (for stable comparisons).
func (r *RSL) SortedAttrs() []string {
	out := append([]string(nil), r.order...)
	sort.Strings(out)
	return out
}

// ParseRSL parses the RSL subset: '&' followed by (key=value) clauses.
// Values may contain any characters except ')'. A missing leading '&' is
// tolerated for single-clause requests.
func ParseRSL(s string) (*RSL, error) {
	t := strings.TrimSpace(s)
	t = strings.TrimPrefix(t, "&")
	r := &RSL{attrs: make(map[string]string)}
	i := 0
	for i < len(t) {
		for i < len(t) && (t[i] == ' ' || t[i] == '\t' || t[i] == '\n') {
			i++
		}
		if i >= len(t) {
			break
		}
		if t[i] != '(' {
			return nil, fmt.Errorf("globus: RSL: expected '(' at %d in %q", i, s)
		}
		end := strings.IndexByte(t[i:], ')')
		if end < 0 {
			return nil, fmt.Errorf("globus: RSL: unterminated clause in %q", s)
		}
		clause := t[i+1 : i+end]
		i += end + 1
		k, v, ok := strings.Cut(clause, "=")
		k = strings.TrimSpace(k)
		if !ok || k == "" {
			return nil, fmt.Errorf("globus: RSL: bad clause %q in %q", clause, s)
		}
		r.Set(k, strings.TrimSpace(v))
	}
	if len(r.attrs) == 0 {
		return nil, fmt.Errorf("globus: RSL: no clauses in %q", s)
	}
	return r, nil
}
