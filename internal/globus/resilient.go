package globus

import (
	"fmt"

	"microgrid/internal/gis"
	"microgrid/internal/netsim"
	"microgrid/internal/simcore"
	"microgrid/internal/trace"
)

// SubmitRetryPolicy governs RunMPIJobResilient: how long to wait for a
// submission to complete, how often to retry, and how to back off. All
// durations are virtual time.
type SubmitRetryPolicy struct {
	// StatusTimeout bounds one attempt end to end (submit through DONE).
	StatusTimeout simcore.Duration
	// MaxAttempts caps submissions (default 3). 1 disables recovery:
	// the first failure is final.
	MaxAttempts int
	// Backoff is the wait before the second attempt (default 250ms
	// virtual), doubling each further attempt.
	Backoff simcore.Duration
	// BackoffJitter, if nonzero, adds ±jitter drawn from a per-job random
	// stream to each backoff — deterministic for a fixed seed and
	// independent of how the model is partitioned across shards.
	BackoffJitter simcore.Duration
	// PortStride spaces the rendezvous base ports of successive attempts
	// (default 64) so a late-dying rank from attempt k cannot collide
	// with attempt k+1's world.
	PortStride int
}

func (p SubmitRetryPolicy) withDefaults() SubmitRetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.Backoff <= 0 {
		p.Backoff = 250 * simcore.Millisecond
	}
	if p.PortStride <= 0 {
		p.PortStride = 64
	}
	return p
}

// ResilientOutcome records what RunMPIJobResilient did.
type ResilientOutcome struct {
	// Attempts is the number of submissions made (1 = no fault hit).
	Attempts int
	// Hosts is the host set of the final (successful or last) attempt.
	Hosts []string
	// BasePort is the rendezvous base of the final attempt.
	BasePort netsim.Port
}

// RunMPIJobResilient submits a count-wide MPI job and shepherds it to
// completion, retrying on failure: each attempt re-discovers live hosts
// from the GIS (crashed gatekeepers deregister, so failover lands on
// survivors), waits at most StatusTimeout, and on timeout or error
// cancels the attempt — jobmanagers reap its ranks — backs off, and
// resubmits on a strided port. This is the paper's middleware story run
// under faults: resource discovery, co-allocation and job management
// composing into recovery.
func (cl *Client) RunMPIJobResilient(server *gis.Server, configName, executable string, count int, basePort netsim.Port, pol SubmitRetryPolicy) (*ResilientOutcome, error) {
	pol = pol.withDefaults()
	out := &ResilientOutcome{}
	backoff := pol.Backoff
	eng := cl.Proc.Proc().Engine()
	// One jitter stream per job, derived from a stable label so retry
	// backoffs are identical however the model is partitioned across
	// shards. The base port disambiguates concurrent jobs for the same
	// executable.
	jitterRng := eng.DeriveRand(fmt.Sprintf("globus:backoff:%s:%s:%d", configName, executable, basePort))
	var lastErr error
	for attempt := 1; attempt <= pol.MaxAttempts; attempt++ {
		out.Attempts = attempt
		if r := eng.Recorder(); r.Enabled(trace.CatGlobus) {
			r.Event(trace.CatGlobus, "attempt", trace.Attr{
				Detail: fmt.Sprintf("%s attempt %d/%d", executable, attempt, pol.MaxAttempts)})
		}
		avail := DiscoverHosts(server, configName)
		if len(avail) == 0 {
			lastErr = fmt.Errorf("globus: no live gatekeepers for config %q", configName)
		} else {
			hosts := make([]string, count)
			for i := range hosts {
				hosts[i] = avail[i%len(avail)]
			}
			port := basePort + netsim.Port((attempt-1)*pol.PortStride)
			out.Hosts, out.BasePort = hosts, port
			mj, err := cl.SubmitMPIJob(server, executable, hosts, port)
			if err == nil {
				if pol.StatusTimeout > 0 {
					err = mj.WaitAllTimeout(pol.StatusTimeout)
				} else {
					err = mj.WaitAll()
				}
				if err == nil {
					if r := eng.Recorder(); r.Enabled(trace.CatGlobus) {
						r.Event(trace.CatGlobus, "job-ok", trace.Attr{
							Detail: fmt.Sprintf("%s after %d attempt(s)", executable, attempt)})
					}
					return out, nil
				}
				mj.Cancel()
			}
			lastErr = err
		}
		if r := eng.Recorder(); r.Enabled(trace.CatGlobus) && lastErr != nil {
			r.Event(trace.CatGlobus, "attempt-fail", trace.Attr{Detail: lastErr.Error()})
		}
		if attempt == pol.MaxAttempts {
			break
		}
		wait := backoff
		if pol.BackoffJitter > 0 {
			wait += simcore.Duration(jitterRng.Int63n(int64(2*pol.BackoffJitter))) - pol.BackoffJitter
			if wait < 0 {
				wait = 0
			}
		}
		if r := eng.Recorder(); r.Enabled(trace.CatGlobus) {
			r.Event(trace.CatGlobus, "backoff", trace.Attr{Detail: wait.String()})
		}
		cl.Proc.Sleep(wait)
		backoff *= 2
	}
	return out, fmt.Errorf("globus: job %s failed after %d attempt(s): %w", executable, out.Attempts, lastErr)
}
