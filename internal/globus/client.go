package globus

import (
	"fmt"
	"strconv"

	"microgrid/internal/gis"
	"microgrid/internal/netsim"
	"microgrid/internal/simcore"
	"microgrid/internal/trace"
	"microgrid/internal/virtual"
)

// Client submits jobs from a virtual host (as in the paper, clients run on
// virtual hosts so submission crosses into the virtual domain through the
// gatekeeper).
type Client struct {
	// Proc is the client's process.
	Proc *virtual.Process
	// Credential is presented to gatekeepers (checked against gridmaps).
	Credential string
	// MaxWallTime, if nonzero, is injected as the RSL maxwalltime of every
	// submitted job: jobmanagers kill ranks that exceed it. Essential for
	// fault experiments, where a network partition can leave ranks running
	// on hosts the client can no longer reach.
	MaxWallTime simcore.Duration
}

// JobHandle tracks one submitted (sub)job.
type JobHandle struct {
	// Host is the gatekeeper host the job was submitted to.
	Host string
	conn *virtual.Conn
	proc *virtual.Process
	// State is the last observed job state.
	State string
	// FailReason holds the error text for StateFailed.
	FailReason string
}

// Submit sends one subjob to a gatekeeper: this process will run as rank
// of a count-wide job whose ranks live on hosts. Returns after the
// gatekeeper accepts the connection and the request is sent.
func (cl *Client) Submit(gatekeeperHost string, port netsim.Port, rsl *RSL, rank, count int, hosts []string, basePort netsim.Port) (*JobHandle, error) {
	if port == 0 {
		port = DefaultGatekeeperPort
	}
	conn, err := cl.Proc.Dial(gatekeeperHost, port)
	if err != nil {
		return nil, fmt.Errorf("globus: submit to %s: %w", gatekeeperHost, err)
	}
	req := &submitReq{
		rslText:    rsl.String(),
		rank:       rank,
		count:      count,
		hosts:      hosts,
		basePort:   basePort,
		credential: cl.Credential,
	}
	if err := conn.Send(len(req.rslText)+64, req); err != nil {
		return nil, fmt.Errorf("globus: submit to %s: %w", gatekeeperHost, err)
	}
	if r := cl.Proc.Proc().Engine().Recorder(); r.Enabled(trace.CatGlobus) {
		r.Event(trace.CatGlobus, "submit", trace.Attr{
			Host: gatekeeperHost, Detail: fmt.Sprintf("rank %d/%d", rank, count)})
	}
	return &JobHandle{Host: gatekeeperHost, conn: conn, proc: cl.Proc, State: StatePending}, nil
}

// NextState blocks for the next status notification.
func (j *JobHandle) NextState() (string, error) {
	m, err := j.conn.Recv()
	if err != nil {
		return "", fmt.Errorf("globus: job on %s: status channel: %w", j.Host, err)
	}
	st, ok := m.Payload.(*statusMsg)
	if !ok {
		return "", fmt.Errorf("globus: job on %s: malformed status", j.Host)
	}
	j.State = st.state
	j.FailReason = st.err
	if r := j.proc.Proc().Engine().Recorder(); r.Enabled(trace.CatGlobus) {
		r.Event(trace.CatGlobus, "job-state", trace.Attr{Host: j.Host, Detail: st.state})
	}
	return st.state, nil
}

// WaitDone blocks until the job reaches DONE or FAILED; FAILED returns an
// error carrying the jobmanager's reason.
func (j *JobHandle) WaitDone() error {
	for {
		state, err := j.NextState()
		if err != nil {
			return err
		}
		switch state {
		case StateDone:
			return nil
		case StateFailed:
			return fmt.Errorf("globus: job on %s failed: %s", j.Host, j.FailReason)
		}
	}
}

// NextStateTimeout is NextState with a deadline of d virtual time. A
// timeout consumes nothing; err remains nil.
func (j *JobHandle) NextStateTimeout(d simcore.Duration) (state string, timedOut bool, err error) {
	m, timedOut, err := j.conn.RecvTimeout(d)
	if err != nil {
		return "", false, fmt.Errorf("globus: job on %s: status channel: %w", j.Host, err)
	}
	if timedOut {
		return "", true, nil
	}
	st, ok := m.Payload.(*statusMsg)
	if !ok {
		return "", false, fmt.Errorf("globus: job on %s: malformed status", j.Host)
	}
	j.State = st.state
	j.FailReason = st.err
	if r := j.proc.Proc().Engine().Recorder(); r.Enabled(trace.CatGlobus) {
		r.Event(trace.CatGlobus, "job-state", trace.Attr{Host: j.Host, Detail: st.state})
	}
	return st.state, false, nil
}

// Cancel abandons the job: closing the status channel tells the
// jobmanager — which checks for a vanished client on every poll — to
// kill the job process. Safe to call at any point, including after DONE.
func (j *JobHandle) Cancel() { j.conn.Close() }

// MultiJob is a coallocated job spread over several gatekeepers (the
// DUROC analog used to launch one MPI rank per virtual host).
type MultiJob struct {
	Handles []*JobHandle
	// Start is the virtual time the last subjob was submitted.
	Start simcore.Time
}

// SubmitMPIJob submits executable as a count-wide MPI job with rank i on
// hosts[i], discovering each host's gatekeeper port from the GIS. basePort
// disambiguates concurrent jobs.
func (cl *Client) SubmitMPIJob(server *gis.Server, executable string, hosts []string, basePort netsim.Port) (*MultiJob, error) {
	if len(hosts) == 0 {
		return nil, fmt.Errorf("globus: no hosts for MPI job")
	}
	rsl := NewRSL([2]string{"executable", executable},
		[2]string{"count", strconv.Itoa(len(hosts))})
	if cl.MaxWallTime > 0 {
		rsl.Set("maxwalltime", strconv.FormatFloat(cl.MaxWallTime.Seconds(), 'g', -1, 64))
	}
	mj := &MultiJob{}
	for rank, h := range hosts {
		port := DefaultGatekeeperPort
		if rec := findHostRecord(server, h); rec != nil {
			if s := rec.Get(gis.AttrGatekeeperPort); s != "" {
				if v, err := strconv.Atoi(s); err == nil {
					port = netsim.Port(v)
				}
			}
		}
		handle, err := cl.Submit(h, port, rsl, rank, len(hosts), hosts, basePort)
		if err != nil {
			// Don't leave already-submitted ranks waiting forever on a
			// world that will never assemble.
			mj.Cancel()
			return nil, err
		}
		mj.Handles = append(mj.Handles, handle)
	}
	mj.Start = cl.Proc.Gettimeofday()
	return mj, nil
}

// Cancel abandons every subjob; their jobmanagers reap the ranks.
func (mj *MultiJob) Cancel() {
	for _, h := range mj.Handles {
		h.Cancel()
	}
}

// WaitAllTimeout is WaitAll with one shared deadline of d virtual time
// across all subjobs. On timeout it reports which subjobs were still
// unfinished; the caller decides whether to Cancel.
func (mj *MultiJob) WaitAllTimeout(d simcore.Duration) error {
	if len(mj.Handles) == 0 {
		return nil
	}
	deadline := mj.Handles[0].proc.Gettimeofday().Add(d)
	var firstErr error
	var late []string
	for _, h := range mj.Handles {
	subjob:
		for {
			remain := deadline.Sub(h.proc.Gettimeofday())
			if remain <= 0 {
				late = append(late, h.Host)
				break
			}
			state, timedOut, err := h.NextStateTimeout(remain)
			switch {
			case err != nil:
				if firstErr == nil {
					firstErr = err
				}
				break subjob
			case timedOut:
				late = append(late, h.Host)
				break subjob
			case state == StateDone:
				break subjob
			case state == StateFailed:
				if firstErr == nil {
					firstErr = fmt.Errorf("globus: job on %s failed: %s", h.Host, h.FailReason)
				}
				break subjob
			}
		}
	}
	if firstErr == nil && len(late) > 0 {
		firstErr = fmt.Errorf("globus: timed out after %v waiting for subjobs on %v", d, late)
	}
	return firstErr
}

// WaitAll blocks until every subjob finishes, returning the first failure.
func (mj *MultiJob) WaitAll() error {
	var firstErr error
	for _, h := range mj.Handles {
		if err := h.WaitDone(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// findHostRecord locates a host record by hostname anywhere in the DIT.
func findHostRecord(server *gis.Server, hostname string) *gis.Entry {
	for _, e := range server.Search("", gis.ScopeSubtree, gis.Present(gis.AttrGatekeeperPort)) {
		if e.DN.RDN() == "hn="+hostname {
			return e
		}
	}
	return nil
}

// DiscoverHosts returns the virtual host names of a configuration that
// have gatekeepers, sorted by hostname — resource discovery through the
// virtualized information service.
func DiscoverHosts(server *gis.Server, configName string) []string {
	filter := gis.And(
		gis.Eq(gis.AttrIsVirtual, "Yes"),
		gis.Eq(gis.AttrConfigName, configName),
		gis.Present(gis.AttrGatekeeperPort),
	)
	var out []string
	for _, e := range server.Search("", gis.ScopeSubtree, filter) {
		rdn := e.DN.RDN()
		if len(rdn) > 3 && rdn[:3] == "hn=" {
			out = append(out, rdn[3:])
		}
	}
	return out
}
