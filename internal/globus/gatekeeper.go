package globus

import (
	"fmt"
	"strconv"

	"microgrid/internal/gis"
	"microgrid/internal/netsim"
	"microgrid/internal/simcore"
	"microgrid/internal/virtual"
)

// DefaultGatekeeperPort is the historical Globus gatekeeper port.
const DefaultGatekeeperPort netsim.Port = 2119

// Job states reported by the jobmanager.
const (
	StatePending = "PENDING"
	StateActive  = "ACTIVE"
	StateDone    = "DONE"
	StateFailed  = "FAILED"
)

// AppFunc is a registered executable: the body of a job process.
type AppFunc func(ctx *JobContext) error

// Registry maps executable names to application functions — the analog of
// binaries installed on every virtual host.
type Registry struct {
	m map[string]AppFunc
}

// NewRegistry returns an empty executable registry.
func NewRegistry() *Registry { return &Registry{m: make(map[string]AppFunc)} }

// Register installs an executable; duplicate names are an error.
func (r *Registry) Register(name string, fn AppFunc) error {
	if _, dup := r.m[name]; dup {
		return fmt.Errorf("globus: executable %q already registered", name)
	}
	r.m[name] = fn
	return nil
}

// Lookup finds an executable.
func (r *Registry) Lookup(name string) (AppFunc, bool) {
	fn, ok := r.m[name]
	return fn, ok
}

// JobContext is what a job process receives: its process handle, the RSL
// request, and its place in a multi-host job.
type JobContext struct {
	// Proc is the job's virtual process.
	Proc *virtual.Process
	// RSL is the submitted request.
	RSL *RSL
	// Rank and Count place this process within the job.
	Rank, Count int
	// Hosts lists the virtual host of each rank.
	Hosts []string
	// BasePort is the rendezvous port base for the job's communicator.
	BasePort netsim.Port
}

// submitReq is the client→gatekeeper submission message.
type submitReq struct {
	rslText    string
	rank       int
	count      int
	hosts      []string
	basePort   netsim.Port
	credential string
}

// statusMsg is the jobmanager→client notification.
type statusMsg struct {
	state string
	err   string
}

// Gatekeeper authenticates submissions on a virtual host and hands them to
// a jobmanager.
type Gatekeeper struct {
	Host *virtual.Host
	Port netsim.Port
	// Gridmap is the set of authorized credentials; empty means allow all
	// (convenient for experiments).
	Gridmap  map[string]bool
	registry *Registry
	ln       *virtual.Listener
	closed   bool
	// Stats
	Submitted, Rejected int64
}

// StartGatekeeper launches the gatekeeper daemon on host at port (0 =
// DefaultGatekeeperPort), serving executables from registry.
func StartGatekeeper(host *virtual.Host, port netsim.Port, registry *Registry) (*Gatekeeper, error) {
	if port == 0 {
		port = DefaultGatekeeperPort
	}
	gk := &Gatekeeper{Host: host, Port: port, registry: registry}
	_, err := host.SpawnDaemon("gatekeeper", func(p *virtual.Process) {
		ln, err := p.Listen(port)
		if err != nil {
			return
		}
		gk.ln = ln
		if gk.closed {
			// Closed before the daemon came up.
			ln.Close()
			return
		}
		for {
			conn, err := ln.Accept(p)
			if err != nil {
				return
			}
			gk.handle(conn)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("globus: gatekeeper on %s: %w", host.Name, err)
	}
	return gk, nil
}

// Close stops accepting new submissions. It may be called before the
// simulation starts.
func (gk *Gatekeeper) Close() {
	if gk.closed {
		return
	}
	gk.closed = true
	if gk.ln != nil {
		gk.ln.Close()
	}
}

// handle processes one submission connection on a fresh handler process.
func (gk *Gatekeeper) handle(conn *virtual.Conn) {
	_, err := gk.Host.SpawnDaemon("gk-handler", func(p *virtual.Process) {
		c := conn.Rebind(p)
		m, err := c.RecvRaw()
		if err != nil {
			return
		}
		req, ok := m.Payload.(*submitReq)
		if !ok {
			_ = c.Send(16, &statusMsg{state: StateFailed, err: "malformed submission"})
			return
		}
		p.ChargeMessage(m.Size)
		// Authentication: the analog of the gatekeeper's gridmap check.
		if len(gk.Gridmap) > 0 && !gk.Gridmap[req.credential] {
			gk.Rejected++
			_ = c.Send(16, &statusMsg{state: StateFailed, err: "authentication failed"})
			return
		}
		rsl, err := ParseRSL(req.rslText)
		if err != nil {
			gk.Rejected++
			_ = c.Send(16, &statusMsg{state: StateFailed, err: err.Error()})
			return
		}
		fn, ok := gk.registry.Lookup(rsl.Executable())
		if !ok {
			gk.Rejected++
			_ = c.Send(16, &statusMsg{state: StateFailed, err: "no such executable " + rsl.Executable()})
			return
		}
		gk.Submitted++
		// Hand off to a jobmanager process, as GRAM does.
		runJobManager(gk.Host, c, rsl, req, fn)
	})
	if err != nil && gk.Host != nil {
		// Out of memory on the virtual host: refuse.
		_ = conn.Send(16, &statusMsg{state: StateFailed, err: "gatekeeper overloaded: " + err.Error()})
	}
}

// runJobManager spawns the jobmanager, which creates and monitors the job
// process and streams status back to the client.
func runJobManager(host *virtual.Host, c *virtual.Conn, rsl *RSL, req *submitReq, fn AppFunc) {
	_, err := host.SpawnDaemon("jobmanager", func(jm *virtual.Process) {
		jmConn := c.Rebind(jm)
		// Jobmanager startup cost (fork/exec, environment setup).
		jm.ComputeVirtualSeconds(0.002)
		if err := jmConn.Send(16, &statusMsg{state: StatePending}); err != nil {
			return
		}
		doneState := StateDone
		errText := ""
		finished := false
		job, err := host.Spawn("job:"+rsl.Executable(), func(p *virtual.Process) {
			ctx := &JobContext{
				Proc:     p,
				RSL:      rsl,
				Rank:     req.rank,
				Count:    req.count,
				Hosts:    req.hosts,
				BasePort: req.basePort,
			}
			if err := fn(ctx); err != nil {
				doneState = StateFailed
				errText = err.Error()
			}
			finished = true
		})
		if err != nil {
			_ = jmConn.Send(16, &statusMsg{state: StateFailed, err: err.Error()})
			return
		}
		if err := jmConn.Send(16, &statusMsg{state: StateActive}); err != nil {
			return
		}
		// Poll for completion, as the real jobmanager polled the local
		// scheduler. The poll interval is virtual time. The same loop
		// enforces the RSL walltime limit and reaps the job if the client
		// vanishes (crashed submitter, cancelled multijob) — without it a
		// partitioned or abandoned rank would compute forever.
		deadline := simcore.Time(0)
		if wt := rsl.MaxWallTime(); wt > 0 {
			deadline = jm.Gettimeofday().Add(simcore.Duration(wt * 1e9))
		}
		for !finished {
			jm.Sleep(10 * simcore.Millisecond)
			if finished {
				break
			}
			if jmConn.PeerClosed() {
				job.Kill()
				jmConn.Close()
				return
			}
			if deadline != 0 && jm.Gettimeofday() >= deadline {
				job.Kill()
				doneState = StateFailed
				errText = fmt.Sprintf("walltime limit of %gs exceeded", rsl.MaxWallTime())
				break
			}
		}
		_ = jmConn.Send(16, &statusMsg{state: doneState, err: errText})
		jmConn.Close()
	})
	if err != nil {
		_ = c.Send(16, &statusMsg{state: StateFailed, err: err.Error()})
	}
}

// RegisterInGIS publishes the gatekeeper's host record into the GIS, with
// the paper's virtual-resource extensions.
func (gk *Gatekeeper) RegisterInGIS(server *gis.Server, orgUnit, configName, mappedPhysical string) {
	rec := gis.VirtualHost{
		Hostname:       gk.Host.Name,
		OrgUnit:        orgUnit,
		ConfigName:     configName,
		MappedPhysical: mappedPhysical,
		CPUSpeedMIPS:   gk.Host.CPUSpeedMIPS,
		MemoryBytes:    gk.Host.Mem.Limit(),
		VirtualIP:      gk.Host.IP.String(),
		GatekeeperPort: int(gk.Port),
	}
	e := rec.Entry()
	e.Set(gis.AttrGatekeeperPort, strconv.Itoa(int(gk.Port)))
	server.Upsert(e)
}

// DeregisterFromGIS removes the gatekeeper's host record — run on host
// crash so clients discovering resources do not route work at a corpse.
func (gk *Gatekeeper) DeregisterFromGIS(server *gis.Server, orgUnit string) {
	dn := gis.VirtualHost{Hostname: gk.Host.Name, OrgUnit: orgUnit}.DN()
	server.Delete(dn)
}
