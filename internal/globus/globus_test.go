package globus

import (
	"fmt"
	"strings"
	"testing"

	"microgrid/internal/gis"
	"microgrid/internal/mpi"
	"microgrid/internal/simcore"
	"microgrid/internal/virtual"
)

func TestParseRSL(t *testing.T) {
	r, err := ParseRSL("&(executable=ep.A.4)(count=4)(arguments=-v --class A)")
	if err != nil {
		t.Fatal(err)
	}
	if r.Executable() != "ep.A.4" || r.Count() != 4 {
		t.Fatalf("exe=%q count=%d", r.Executable(), r.Count())
	}
	args := r.Arguments()
	if len(args) != 3 || args[0] != "-v" {
		t.Fatalf("args = %v", args)
	}
	// Round trip.
	r2, err := ParseRSL(r.String())
	if err != nil || r2.String() != r.String() {
		t.Fatalf("round trip %q vs %q (%v)", r2, r, err)
	}
}

func TestParseRSLDefaults(t *testing.T) {
	r, err := ParseRSL("(executable=x)")
	if err != nil {
		t.Fatal(err)
	}
	if r.Count() != 1 || r.Arguments() != nil {
		t.Fatalf("defaults: count=%d args=%v", r.Count(), r.Arguments())
	}
	if r.Get("EXECUTABLE") != "x" {
		t.Fatal("case-insensitive Get failed")
	}
}

func TestParseRSLErrors(t *testing.T) {
	for _, bad := range []string{"", "&", "&(noequals)", "&(=v)", "&(a=b", "&x(a=b)"} {
		if _, err := ParseRSL(bad); err == nil {
			t.Errorf("ParseRSL(%q) accepted", bad)
		}
	}
}

func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register("ep", func(*JobContext) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("ep", nil); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, ok := reg.Lookup("ep"); !ok {
		t.Fatal("lookup failed")
	}
	if _, ok := reg.Lookup("missing"); ok {
		t.Fatal("phantom lookup")
	}
}

// testbed builds a 3-host grid with gatekeepers on vm1, vm2 and a client
// on vm0, plus a GIS.
type testbed struct {
	eng    *simcore.Engine
	grid   *virtual.Grid
	server *gis.Server
	reg    *Registry
	gks    []*Gatekeeper
}

func newTestbed(t *testing.T, n int) *testbed {
	t.Helper()
	eng := simcore.NewEngine(1)
	g, err := virtual.NewLANGrid(eng, "vm", n, 533, 533, 100e6, 25*simcore.Microsecond, 0, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	tb := &testbed{eng: eng, grid: g, server: gis.NewServer(), reg: NewRegistry()}
	for i := 1; i < n; i++ {
		gk, err := StartGatekeeper(g.Host(fmt.Sprintf("vm%d", i)), 0, tb.reg)
		if err != nil {
			t.Fatal(err)
		}
		gk.RegisterInGIS(tb.server, "CSAG", "TestConfig", fmt.Sprintf("phys-vm%d", i))
		tb.gks = append(tb.gks, gk)
	}
	return tb
}

func TestSubmitRunsJob(t *testing.T) {
	tb := newTestbed(t, 2)
	ran := false
	var gotArgs []string
	if err := tb.reg.Register("hello", func(ctx *JobContext) error {
		ran = true
		gotArgs = ctx.RSL.Arguments()
		ctx.Proc.ComputeVirtualSeconds(0.05)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var jobErr error
	_, err := tb.grid.Host("vm0").Spawn("client", func(p *virtual.Process) {
		cl := &Client{Proc: p, Credential: "user"}
		rsl := NewRSL([2]string{"executable", "hello"}, [2]string{"arguments", "a b"})
		h, err := cl.Submit("vm1", 0, rsl, 0, 1, []string{"vm1"}, 0)
		if err != nil {
			jobErr = err
			return
		}
		jobErr = h.WaitDone()
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if jobErr != nil {
		t.Fatal(jobErr)
	}
	if !ran || len(gotArgs) != 2 {
		t.Fatalf("ran=%v args=%v", ran, gotArgs)
	}
	if tb.gks[0].Submitted != 1 {
		t.Fatalf("submitted = %d", tb.gks[0].Submitted)
	}
}

func TestJobFailureReported(t *testing.T) {
	tb := newTestbed(t, 2)
	_ = tb.reg.Register("boom", func(ctx *JobContext) error {
		return fmt.Errorf("segfault at 0xdead")
	})
	var jobErr error
	_, _ = tb.grid.Host("vm0").Spawn("client", func(p *virtual.Process) {
		cl := &Client{Proc: p}
		h, err := cl.Submit("vm1", 0, NewRSL([2]string{"executable", "boom"}), 0, 1, []string{"vm1"}, 0)
		if err != nil {
			jobErr = err
			return
		}
		jobErr = h.WaitDone()
	})
	if err := tb.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if jobErr == nil || !strings.Contains(jobErr.Error(), "segfault") {
		t.Fatalf("jobErr = %v", jobErr)
	}
}

func TestUnknownExecutableRejected(t *testing.T) {
	tb := newTestbed(t, 2)
	var jobErr error
	_, _ = tb.grid.Host("vm0").Spawn("client", func(p *virtual.Process) {
		cl := &Client{Proc: p}
		h, err := cl.Submit("vm1", 0, NewRSL([2]string{"executable", "nope"}), 0, 1, []string{"vm1"}, 0)
		if err != nil {
			jobErr = err
			return
		}
		jobErr = h.WaitDone()
	})
	if err := tb.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if jobErr == nil || !strings.Contains(jobErr.Error(), "no such executable") {
		t.Fatalf("jobErr = %v", jobErr)
	}
}

func TestGridmapAuthentication(t *testing.T) {
	tb := newTestbed(t, 2)
	tb.gks[0].Gridmap = map[string]bool{"alice": true}
	_ = tb.reg.Register("x", func(*JobContext) error { return nil })
	outcomes := map[string]error{}
	_, _ = tb.grid.Host("vm0").Spawn("client", func(p *virtual.Process) {
		for _, cred := range []string{"alice", "mallory"} {
			cl := &Client{Proc: p, Credential: cred}
			h, err := cl.Submit("vm1", 0, NewRSL([2]string{"executable", "x"}), 0, 1, []string{"vm1"}, 0)
			if err != nil {
				outcomes[cred] = err
				continue
			}
			outcomes[cred] = h.WaitDone()
		}
	})
	if err := tb.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if outcomes["alice"] != nil {
		t.Fatalf("alice rejected: %v", outcomes["alice"])
	}
	if outcomes["mallory"] == nil || !strings.Contains(outcomes["mallory"].Error(), "authentication") {
		t.Fatalf("mallory = %v", outcomes["mallory"])
	}
	if tb.gks[0].Rejected != 1 {
		t.Fatalf("rejected = %d", tb.gks[0].Rejected)
	}
}

func TestGISRegistrationAndDiscovery(t *testing.T) {
	tb := newTestbed(t, 3)
	hosts := DiscoverHosts(tb.server, "TestConfig")
	if len(hosts) != 2 || hosts[0] != "vm1" || hosts[1] != "vm2" {
		t.Fatalf("discovered %v", hosts)
	}
	if DiscoverHosts(tb.server, "Other") != nil {
		t.Fatal("phantom config discovered")
	}
	rec := findHostRecord(tb.server, "vm1")
	if rec == nil || rec.Get(gis.AttrGatekeeperPort) != "2119" {
		t.Fatalf("record = %v", rec)
	}
}

// TestMPIJobThroughGlobus is the full stack: client discovers hosts via
// GIS, submits a 2-rank MPI job through two gatekeepers, ranks connect and
// allreduce, statuses flow back.
func TestMPIJobThroughGlobus(t *testing.T) {
	tb := newTestbed(t, 3)
	var sums []float64
	_ = tb.reg.Register("allred", func(ctx *JobContext) error {
		c, err := mpi.Connect(ctx.Proc, ctx.Rank, ctx.Count, ctx.BasePort,
			func(r int) string { return ctx.Hosts[r] })
		if err != nil {
			return err
		}
		out, err := c.AllreduceFloat64([]float64{float64(ctx.Rank + 1)}, mpi.Sum)
		if err != nil {
			return err
		}
		sums = append(sums, out[0])
		return nil
	})
	var jobErr error
	_, _ = tb.grid.Host("vm0").Spawn("client", func(p *virtual.Process) {
		cl := &Client{Proc: p, Credential: "user"}
		hosts := DiscoverHosts(tb.server, "TestConfig")
		mj, err := cl.SubmitMPIJob(tb.server, "allred", hosts, 6000)
		if err != nil {
			jobErr = err
			return
		}
		jobErr = mj.WaitAll()
	})
	if err := tb.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if jobErr != nil {
		t.Fatal(jobErr)
	}
	if len(sums) != 2 || sums[0] != 3 || sums[1] != 3 {
		t.Fatalf("allreduce results = %v", sums)
	}
}

// TestConcurrentMPIJobs: two MPI jobs run through the same gatekeepers at
// the same time, on distinct rendezvous ports.
func TestConcurrentMPIJobs(t *testing.T) {
	tb := newTestbed(t, 3)
	runs := map[string]int{}
	mkApp := func(name string) AppFunc {
		return func(ctx *JobContext) error {
			c, err := mpi.Connect(ctx.Proc, ctx.Rank, ctx.Count, ctx.BasePort,
				func(r int) string { return ctx.Hosts[r] })
			if err != nil {
				return err
			}
			ctx.Proc.ComputeVirtualSeconds(0.05)
			if err := c.Barrier(); err != nil {
				return err
			}
			runs[name]++
			return nil
		}
	}
	_ = tb.reg.Register("jobA", mkApp("A"))
	_ = tb.reg.Register("jobB", mkApp("B"))
	var errA, errB error
	_, _ = tb.grid.Host("vm0").Spawn("client", func(p *virtual.Process) {
		cl := &Client{Proc: p}
		hosts := DiscoverHosts(tb.server, "TestConfig")
		ja, err := cl.SubmitMPIJob(tb.server, "jobA", hosts, 7000)
		if err != nil {
			errA = err
			return
		}
		jb, err := cl.SubmitMPIJob(tb.server, "jobB", hosts, 8000)
		if err != nil {
			errB = err
			return
		}
		errA = ja.WaitAll()
		errB = jb.WaitAll()
	})
	if err := tb.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if errA != nil || errB != nil {
		t.Fatalf("errA=%v errB=%v", errA, errB)
	}
	if runs["A"] != 2 || runs["B"] != 2 {
		t.Fatalf("runs = %v", runs)
	}
}

func TestGatekeeperClose(t *testing.T) {
	tb := newTestbed(t, 2)
	_ = tb.reg.Register("x", func(*JobContext) error { return nil })
	tb.gks[0].Close()
	var err error
	_, _ = tb.grid.Host("vm0").Spawn("client", func(p *virtual.Process) {
		cl := &Client{Proc: p}
		h, serr := cl.Submit("vm1", 0, NewRSL([2]string{"executable", "x"}), 0, 1, []string{"vm1"}, 0)
		if serr != nil {
			err = serr
			return
		}
		err = h.WaitDone()
	})
	if rerr := tb.eng.Run(); rerr != nil {
		t.Fatal(rerr)
	}
	if err == nil {
		t.Fatal("submission to closed gatekeeper succeeded")
	}
}

func TestJobContextCarriesRSLArguments(t *testing.T) {
	tb := newTestbed(t, 2)
	var got []string
	var rank, count int
	_ = tb.reg.Register("argy", func(ctx *JobContext) error {
		got = ctx.RSL.Arguments()
		rank, count = ctx.Rank, ctx.Count
		return nil
	})
	_, _ = tb.grid.Host("vm0").Spawn("client", func(p *virtual.Process) {
		cl := &Client{Proc: p}
		rsl := NewRSL([2]string{"executable", "argy"}, [2]string{"arguments", "--class A -n 4"})
		h, err := cl.Submit("vm1", 0, rsl, 3, 8, []string{"vm1"}, 0)
		if err != nil {
			t.Error(err)
			return
		}
		if err := h.WaitDone(); err != nil {
			t.Error(err)
		}
	})
	if err := tb.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[0] != "--class" {
		t.Fatalf("args = %v", got)
	}
	if rank != 3 || count != 8 {
		t.Fatalf("rank/count = %d/%d", rank, count)
	}
}

func TestSubmitMPIJobEmptyHosts(t *testing.T) {
	tb := newTestbed(t, 2)
	_, _ = tb.grid.Host("vm0").Spawn("client", func(p *virtual.Process) {
		cl := &Client{Proc: p}
		if _, err := cl.SubmitMPIJob(tb.server, "x", nil, 0); err == nil {
			t.Error("empty host list accepted")
		}
	})
	if err := tb.eng.Run(); err != nil {
		t.Fatal(err)
	}
}
