// NPB on a virtual cluster: the paper's headline validation in miniature.
// Runs a NAS Parallel Benchmark twice — once directly on a model of the
// Alpha cluster (the "physical grid" reference) and once emulated by the
// MicroGrid at half speed — then compares total run times in virtual
// time, as in Figure 10.
//
//	go run ./examples/npb-cluster           # MG, class S
//	go run ./examples/npb-cluster -bench LU -class A
package main

import (
	"flag"
	"fmt"
	"log"

	"microgrid"
)

func main() {
	bench := flag.String("bench", "MG", "NPB kernel: EP, BT, LU, MG, IS")
	classStr := flag.String("class", "A", "problem class: S, W, A (validation is tightest at A; S exposes quantum effects)")
	rate := flag.Float64("rate", 0.5, "MicroGrid simulation rate for the emulated run")
	flag.Parse()

	class := microgrid.NPBClass((*classStr)[0])

	run := func(emulated bool) float64 {
		cfg := microgrid.BuildConfig{Seed: 42, Target: microgrid.AlphaCluster}
		label := "physical grid (direct model)"
		if emulated {
			emu := microgrid.AlphaCluster
			cfg.Emulation = &emu
			cfg.Rate = *rate
			label = fmt.Sprintf("MicroGrid (emulated at rate %.2f)", *rate)
		}
		m, err := microgrid.Build(cfg)
		if err != nil {
			log.Fatal(err)
		}
		report, err := m.RunApp(*bench, func(ctx *microgrid.AppContext) error {
			return microgrid.RunNPB(ctx, *bench, class, nil)
		}, microgrid.RunOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-38s %8.3f virtual s  (%8.3f emulation s)\n",
			label, report.VirtualElapsed.Seconds(), report.PhysicalElapsed.Seconds())
		return report.VirtualElapsed.Seconds()
	}

	fmt.Printf("NPB %s class %c on 4 virtual 533 MHz Alphas / 100Mb Ethernet\n\n", *bench, class)
	phys := run(false)
	emu := run(true)
	fmt.Printf("\nmodeling error: %.2f%%\n", 100*abs(emu-phys)/phys)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
