// NPB on a virtual cluster: the paper's headline validation in miniature.
// Runs a NAS Parallel Benchmark twice — once directly on a model of the
// Alpha cluster (the "physical grid" reference) and once emulated by the
// MicroGrid at half speed — then compares total run times in virtual
// time, as in Figure 10.
//
//	go run ./examples/npb-cluster           # MG, class S
//	go run ./examples/npb-cluster -bench LU -class A
package main

import (
	"flag"
	"fmt"
	"log"

	"microgrid"
)

func main() {
	bench := flag.String("bench", "MG", "NPB kernel: EP, BT, LU, MG, IS")
	classStr := flag.String("class", "A", "problem class: S, W, A (validation is tightest at A; S exposes quantum effects)")
	rate := flag.Float64("rate", 0.5, "MicroGrid simulation rate for the emulated run")
	flag.Parse()

	class := microgrid.NPBClass((*classStr)[0])

	// One scenario declares the whole run — grid, workload, emulation
	// policy; the physical arm simply drops the emulate/rate lines.
	run := func(emulated bool) float64 {
		s := &microgrid.Scenario{
			Name:   "npb-cluster",
			Seed:   42,
			Target: microgrid.ScenarioMachineOf(microgrid.AlphaCluster),
			Workload: &microgrid.ScenarioWorkload{
				Kind: "npb", Bench: *bench, Class: byte(class),
			},
		}
		label := "physical grid (direct model)"
		if emulated {
			s.Emulation = microgrid.ScenarioMachineOf(microgrid.AlphaCluster)
			s.Rate = *rate
			label = fmt.Sprintf("MicroGrid (emulated at rate %.2f)", *rate)
		}
		report, err := microgrid.RunScenario(s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-38s %8.3f virtual s  (%8.3f emulation s)\n",
			label, report.VirtualElapsed.Seconds(), report.PhysicalElapsed.Seconds())
		return report.VirtualElapsed.Seconds()
	}

	fmt.Printf("NPB %s class %c on 4 virtual 533 MHz Alphas / 100Mb Ethernet\n\n", *bench, class)
	phys := run(false)
	emu := run(true)
	fmt.Printf("\nmodeling error: %.2f%%\n", 100*abs(emu-phys)/phys)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
