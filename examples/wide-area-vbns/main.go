// Wide-area Grid study: NPB over the paper's fictional vBNS testbed
// (Figures 13–14). Four processes — two at UCSD, two at UIUC — run across
// a wide-area path traversing campus LANs, OC3 access circuits, and a
// varied backbone link, showing that Grid applications must be latency
// tolerant: bandwidth barely matters for all but EP.
//
//	go run ./examples/wide-area-vbns
//	go run ./examples/wide-area-vbns -bench LU
package main

import (
	"flag"
	"fmt"
	"log"

	"microgrid"
)

func main() {
	bench := flag.String("bench", "MG", "NPB kernel: EP, BT, LU, MG, IS")
	flag.Parse()

	fmt.Printf("NPB %s class S: 2 processes at UCSD + 2 at UIUC over the vBNS\n\n", *bench)
	fmt.Printf("%-14s %12s\n", "WAN link", "time (s)")
	for _, wan := range []struct {
		name string
		bps  float64
	}{
		{"OC12 622Mb/s", microgrid.OC12Bps},
		{"OC3  155Mb/s", microgrid.OC3Bps},
		{"10Mb/s", 10e6},
	} {
		spec, err := microgrid.VBNSSpec(2, wan.bps)
		if err != nil {
			log.Fatal(err)
		}
		// The scenario pins ranks to sites: two processes at UCSD, two
		// at UIUC, per-host specs from the Alpha-cluster target.
		report, err := microgrid.RunScenario(&microgrid.Scenario{
			Name:      "wide-area-vbns",
			Seed:      7,
			Target:    microgrid.ScenarioMachineOf(microgrid.AlphaCluster),
			Topology:  spec,
			HostRanks: []string{"ucsd0", "ucsd1", "uiuc0", "uiuc1"},
			Workload: &microgrid.ScenarioWorkload{
				Kind: "npb", Bench: *bench, Class: byte(microgrid.NPBClassS),
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %12.3f\n", wan.name, report.VirtualElapsed.Seconds())
	}
	fmt.Println("\nAs in the paper: latency effects dominate — performance is only")
	fmt.Println("mildly sensitive to WAN bandwidth (EP excepted).")
}
