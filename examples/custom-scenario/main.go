// Custom scenario: the whole experiment — virtual grid, workload, retry
// policy, fault schedule — lives in one declarative .scenario file, and
// this program only loads and runs it. The committed file describes a
// five-host Alpha cluster where a chaos schedule crashes one host
// mid-run; gatekeeper failover re-submits the NPB job to the spare host.
//
// The same file runs without any Go code at all:
//
//	mgrid -scenario examples/custom-scenario/faulty-cluster.scenario
package main

import (
	"flag"
	"fmt"
	"log"
	"path/filepath"

	"microgrid"
)

func main() {
	file := flag.String("f", "examples/custom-scenario/faulty-cluster.scenario",
		"scenario file to run")
	flag.Parse()

	s, err := microgrid.LoadScenario(*file)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario %s — %s\n", s.Name, s.Description)
	fmt.Printf("grid: %d hosts, workload %s %s, chaos %q (%d events)\n\n",
		s.Target.Procs, s.Workload.Kind, s.Workload.Bench, s.Chaos.Name, len(s.Chaos.Events))

	// Relative references inside the scenario resolve against its
	// directory, exactly as `mgrid -scenario` does.
	report, err := microgrid.RunScenarioEnv(s, microgrid.ScenarioEnv{BaseDir: filepath.Dir(*file)})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("application time: %.3f virtual s\n", report.VirtualElapsed.Seconds())
	fmt.Printf("job time:         %.3f virtual s over %d attempt(s)\n",
		report.JobVirtual.Seconds(), report.Attempts)
	if report.Attempts > 1 {
		fmt.Println("the crash was ridden out: the retry landed on the spare host")
	}
}
