// Adaptive middleware study: the experiment class the MicroGrid was built
// for. A master/worker application runs on a *heterogeneous* virtual grid
// (one worker is 4× slower) under two scheduling policies — static
// partitioning vs adaptive self-scheduling — and the virtual-time results
// show how much adaptation buys. Changing the grid is one line; no
// physical testbed required.
package main

import (
	"fmt"
	"log"
	"strings"

	"microgrid"
)

// A heterogeneous grid defined in the GIS: a master, two fast workers and
// one slow worker.
const gridLDIF = `
dn: ou=Concurrent Systems Architecture Group, o=Grid

dn: hn=master, ou=Concurrent Systems Architecture Group, o=Grid
Is_Virtual_Resource: Yes
Configuration_Name: Hetero
Mapped_Physical_Resource: pm
CpuSpeed: 533
MemorySize: 256MBytes
Virtual_IP: 1.11.11.1

dn: hn=worker-fast1, ou=Concurrent Systems Architecture Group, o=Grid
Is_Virtual_Resource: Yes
Configuration_Name: Hetero
Mapped_Physical_Resource: p1
CpuSpeed: 533
MemorySize: 256MBytes
Virtual_IP: 1.11.11.2

dn: hn=worker-fast2, ou=Concurrent Systems Architecture Group, o=Grid
Is_Virtual_Resource: Yes
Configuration_Name: Hetero
Mapped_Physical_Resource: p2
CpuSpeed: 533
MemorySize: 256MBytes
Virtual_IP: 1.11.11.3

dn: hn=worker-slow, ou=Concurrent Systems Architecture Group, o=Grid
Is_Virtual_Resource: Yes
Configuration_Name: Hetero
Mapped_Physical_Resource: p3
CpuSpeed: 133
MemorySize: 256MBytes
Virtual_IP: 1.11.11.4

dn: nn=1.11.11.0, nn=1.11.0.0, ou=Concurrent Systems Architecture Group, o=Grid
Is_Virtual_Resource: Yes
Configuration_Name: Hetero
nwType: LAN
speed: 100Mbps 25us
`

func run(policy microgrid.WorkQueueConfig) (float64, *microgrid.WorkQueueResult) {
	server, err := microgrid.LoadGIS(strings.NewReader(gridLDIF))
	if err != nil {
		log.Fatal(err)
	}
	// The grid is declared by a scenario referencing the GIS
	// configuration; the farm itself stays a custom application function
	// because it captures the per-worker result breakdown.
	s := &microgrid.Scenario{
		Name: "adaptive-scheduling",
		Seed: 2,
		GIS:  &microgrid.ScenarioGIS{Config: "Hetero"},
	}
	m, err := microgrid.BuildScenarioEnv(s, microgrid.ScenarioEnv{GIS: server})
	if err != nil {
		log.Fatal(err)
	}
	var res *microgrid.WorkQueueResult
	report, err := m.RunApp("farm", func(ctx *microgrid.AppContext) error {
		r, err := microgrid.RunWorkQueue(ctx, policy)
		if err != nil {
			return err
		}
		if r != nil {
			res = r
		}
		return nil
	}, microgrid.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	return report.VirtualElapsed.Seconds(), res
}

func main() {
	base := microgrid.WorkQueueConfig{Units: 400, OpsPerUnit: 2e6}

	fmt.Println("400 work units on {533, 533, 133} MIPS workers (master on a 4th host)")
	fmt.Println()

	base.Policy = microgrid.WorkQueueStatic
	tStatic, rStatic := run(base)
	fmt.Printf("static partitioning:  %6.3f virtual s   per-worker units %v\n",
		tStatic, rStatic.PerWorker[1:])

	base.Policy = microgrid.WorkQueueSelfScheduling
	tAdaptive, rAdaptive := run(base)
	fmt.Printf("self-scheduling:      %6.3f virtual s   per-worker units %v\n",
		tAdaptive, rAdaptive.PerWorker[1:])

	fmt.Printf("\nadaptation gain: %.0f%% faster on this heterogeneous grid\n",
		100*(1-tAdaptive/tStatic))
}
