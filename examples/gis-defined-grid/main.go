// GIS-driven grid: define an entire virtual grid as LDIF records — the
// paper's Fig.-3-style virtual host and network entries — then build a
// MicroGrid straight from the directory and run a job on it. This is the
// paper's own bootstrap path: the virtual grid's configuration lives in
// the (virtualized) Grid Information Service.
package main

import (
	"fmt"
	"log"
	"strings"

	"microgrid"
)

// The grid definition: two slow virtual machines mapped onto one fast
// physical machine, exactly the paper's "Slow_CPU_Configuration" idea.
const gridLDIF = `
dn: ou=Concurrent Systems Architecture Group, o=Grid

dn: hn=vm1.ucsd.edu, ou=Concurrent Systems Architecture Group, o=Grid
Is_Virtual_Resource: Yes
Configuration_Name: Slow_CPU_Configuration
Mapped_Physical_Resource: csag-226-67.ucsd.edu
CpuSpeed: 100
MemorySize: 100MBytes
Virtual_IP: 1.11.11.2

dn: hn=vm2.ucsd.edu, ou=Concurrent Systems Architecture Group, o=Grid
Is_Virtual_Resource: Yes
Configuration_Name: Slow_CPU_Configuration
Mapped_Physical_Resource: csag-226-67.ucsd.edu
CpuSpeed: 100
MemorySize: 100MBytes
Virtual_IP: 1.11.11.3

dn: nn=1.11.11.0, nn=1.11.0.0, ou=Concurrent Systems Architecture Group, o=Grid
Is_Virtual_Resource: Yes
Configuration_Name: Slow_CPU_Configuration
nwType: LAN
speed: 100Mbps 25us
`

func main() {
	server, err := microgrid.LoadGIS(strings.NewReader(gridLDIF))
	if err != nil {
		log.Fatal(err)
	}

	// The scenario references the grid by configuration name; the
	// already-loaded directory is supplied through the environment, so
	// no LDIF file needs to exist on disk. Both 100 MIPS virtual
	// machines share one 533 MIPS physical machine; rate 0 picks the
	// fastest feasible simulation rate automatically from the resource
	// specifications (§2.3).
	s := &microgrid.Scenario{
		Name: "gis-defined-grid",
		Seed: 1,
		GIS: &microgrid.ScenarioGIS{
			Config:   "Slow_CPU_Configuration",
			PhysMIPS: map[string]float64{"csag-226-67.ucsd.edu": 533},
		},
	}
	m, err := microgrid.BuildScenarioEnv(s, microgrid.ScenarioEnv{GIS: server})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid %q: hosts %v\n", m.ConfigName, m.Hosts)
	fmt.Printf("feasible simulation rate: %.3f (two 100 MIPS VMs on one 533 MIPS machine)\n\n", m.Rate())

	report, err := m.RunApp("pingpong", func(ctx *microgrid.AppContext) error {
		c := ctx.Comm
		fmt.Printf("rank %d on %s (a %0.f MIPS virtual machine)\n",
			c.Rank(), ctx.Proc.Gethostname(), 100.0)
		// Half a virtual second of computation, then an exchange.
		ctx.Proc.ComputeVirtualSeconds(0.5)
		peer := 1 - c.Rank()
		_, _, err := c.Sendrecv(peer, 1, 4096, nil, peer, 1)
		return err
	}, microgrid.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvirtual time: %.3fs;  emulation (wallclock) time: %.3fs\n",
		report.VirtualElapsed.Seconds(), report.PhysicalElapsed.Seconds())
	fmt.Println("the application perceived full-speed 100 MIPS machines throughout")
}
