// Quickstart: build a virtual Alpha cluster, submit a small MPI
// application through the virtualized Globus stack, and read back
// virtual-time results — the minimal end-to-end MicroGrid workflow.
package main

import (
	"fmt"
	"log"

	"microgrid"
)

// The grid is declared, not constructed: a scenario names the target
// machine platform, and BuildScenario assembles the matching MicroGrid.
// The same text works as a standalone file for `mgrid -scenario`.
const scenarioText = `scenario quickstart
describe a 4-host virtual Alpha cluster for the minimal workflow
seed 1
target procs=4 cpu=533 mem=1GBytes net=100Mbps delay=25us name="Alpha Cluster"
`

func main() {
	// A MicroGrid models a *target* grid. With no emulate platform the
	// scenario runs "direct": the reference mode the paper calls the
	// physical grid.
	s, err := microgrid.ParseScenario(scenarioText)
	if err != nil {
		log.Fatal(err)
	}
	m, err := microgrid.BuildScenario(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %q: %d virtual hosts, simulation rate %.2f\n",
		m.ConfigName, len(m.Hosts), m.Rate())

	// The application sees only the virtual grid: virtual hostnames,
	// virtual IPs, virtual time. It is submitted to each host's
	// gatekeeper, spawned by a jobmanager, and wired into an MPI world.
	report, err := m.RunApp("ring", func(ctx *microgrid.AppContext) error {
		c := ctx.Comm
		fmt.Printf("rank %d runs on %s at virtual t=%v\n",
			c.Rank(), ctx.Proc.Gethostname(), ctx.Proc.Gettimeofday())

		// One second of virtual computation...
		ctx.Proc.ComputeVirtualSeconds(1.0)

		// ...then a ring message: each rank passes a token once around.
		next := (c.Rank() + 1) % c.Size()
		prev := (c.Rank() - 1 + c.Size()) % c.Size()
		if c.Rank() == 0 {
			if err := c.Send(next, 0, 1024, "token"); err != nil {
				return err
			}
			_, _, err := c.Recv(prev, 0)
			return err
		}
		if _, _, err := c.Recv(prev, 0); err != nil {
			return err
		}
		return c.Send(next, 0, 1024, "token")
	}, microgrid.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\napplication finished: %.3f virtual seconds (longest rank)\n",
		report.VirtualElapsed.Seconds())
	for rank, d := range report.PerRank {
		fmt.Printf("  rank %d: %.3fs\n", rank, d.Seconds())
	}
}
