// Full-application run: the CACTUS WaveToy PDE solver (the paper's §3.5
// validation) driven by a Cactus-style parameter file, with an Autopilot
// sensor sampling the solver's progress — physical vs MicroGrid, as in
// Figure 16.
//
//	go run ./examples/cactus-wavetoy
//	go run ./examples/cactus-wavetoy -size 100 -steps 50
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"microgrid"
)

const parFileTemplate = `
# WaveToy over the MicroGrid
ActiveThorns = "wavetoy idscalarwave pugh"
driver::global_nsize = %d
cactus::cctk_itlast  = %d
wavetoy::bound       = "radiation"
`

func main() {
	size := flag.Int("size", 50, "grid edge (the paper uses 50 and 250)")
	steps := flag.Int("steps", 100, "evolution steps")
	flag.Parse()

	parText := fmt.Sprintf(parFileTemplate, *size, *steps)
	params, extra, err := microgrid.ParseWaveToyParFile(strings.NewReader(parText))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("WaveToy: %d³ grid, %d steps (boundary %q)\n\n",
		params.GridEdge, params.Steps, extra["wavetoy::bound"])

	run := func(emulated bool) float64 {
		// The grid comes from a declarative scenario; the WaveToy run
		// itself stays a custom application function so the Autopilot
		// sensor can hook the solver's progress callback.
		s := &microgrid.Scenario{
			Name:   "cactus-wavetoy",
			Seed:   16,
			Target: microgrid.ScenarioMachineOf(microgrid.AlphaCluster),
		}
		label := "physical grid"
		if emulated {
			s.Emulation = microgrid.ScenarioMachineOf(microgrid.AlphaCluster)
			s.Rate = 0.5
			label = "MicroGrid (rate 0.5)"
		}
		m, err := microgrid.BuildScenario(s)
		if err != nil {
			log.Fatal(err)
		}
		report, err := m.RunApp("wavetoy", func(ctx *microgrid.AppContext) error {
			p := params
			if ctx.Comm.Rank() == 0 {
				sensor := ctx.Collector.Register("wavetoy-step")
				p.Progress = func(rank, step int, _ float64) {
					if rank == 0 {
						sensor.Set(float64(step))
					}
				}
			}
			return microgrid.RunWaveToy(ctx, p)
		}, microgrid.RunOptions{SamplePeriod: 100 * 1000 * 1000 /* 100ms virtual */})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %8.3f virtual s", label, report.VirtualElapsed.Seconds())
		if tr := report.Traces["wavetoy-step"]; len(tr) > 0 {
			fmt.Printf("   (autopilot: %d samples, final step %.0f)",
				len(tr), tr[len(tr)-1].Value)
		}
		fmt.Println()
		return report.VirtualElapsed.Seconds()
	}

	phys := run(false)
	emu := run(true)
	fmt.Printf("\nmodeling error: %.2f%% (paper: within 5–7%%)\n", 100*abs(emu-phys)/phys)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
