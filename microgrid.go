// Package microgrid is the public API of the MicroGrid reproduction: a
// set of simulation tools that let Grid applications run on arbitrary
// *virtual* Grid resources, after "The MicroGrid: a Scientific Tool for
// Modeling Computational Grids" (Song, Liu, Jakobsen, Bhagwan, Zhang,
// Taura, Chien — SC2000).
//
// The package re-exports the assembled system from internal/core plus the
// building blocks an application author needs: build a MicroGrid for a
// target machine configuration (optionally emulated on different physical
// hardware at a chosen simulation rate), then run an MPI-style application
// through the virtualized Globus stack and read back virtual-time results.
//
//	m, err := microgrid.Build(microgrid.BuildConfig{
//		Target: microgrid.AlphaCluster,
//	})
//	report, err := m.RunApp("hello", func(ctx *microgrid.AppContext) error {
//		ctx.Proc.ComputeVirtualSeconds(1)
//		return ctx.Comm.Barrier()
//	}, microgrid.RunOptions{})
//
// Every table and figure of the paper's evaluation is available as an
// experiment; see Experiments and the cmd/mgrid tool.
package microgrid

import (
	"context"
	"io"

	"microgrid/internal/chaos"
	"microgrid/internal/core"
	"microgrid/internal/globus"
	"microgrid/internal/npb"
	"microgrid/internal/runner"
	"microgrid/internal/scenario"
	"microgrid/internal/simcore"
	"microgrid/internal/trace"
)

// Core system types.
type (
	// MicroGrid is an assembled virtual grid plus its GIS and Globus stack.
	MicroGrid = core.MicroGrid
	// BuildConfig configures Build.
	BuildConfig = core.BuildConfig
	// MachineConfig describes a (virtual or physical) machine platform.
	MachineConfig = core.MachineConfig
	// AppContext is what application functions receive on each rank.
	AppContext = core.AppContext
	// RunOptions tunes RunApp.
	RunOptions = core.RunOptions
	// Report is the outcome of a run.
	Report = core.Report
	// Experiment is a reproduced paper table/figure.
	Experiment = core.Experiment
	// ExperimentFunc runs one experiment.
	ExperimentFunc = core.ExperimentFunc
	// Time and Duration are simulated-time types.
	Time = simcore.Time
	// Duration is a span of simulated time.
	Duration = simcore.Duration
	// NPBClass selects a NAS Parallel Benchmark problem size.
	NPBClass = npb.Class
)

// Build assembles a MicroGrid.
func Build(cfg BuildConfig) (*MicroGrid, error) { return core.Build(cfg) }

// The paper's Fig. 9 machine configurations.
var (
	// AlphaCluster is 4× 533 MHz DEC 21164 on 100 Mb Ethernet.
	AlphaCluster = core.AlphaCluster
	// HPVM is 4× 300 MHz Pentium II on 1.2 Gb Myrinet.
	HPVM = core.HPVM
)

// NPB problem classes.
const (
	NPBClassS = npb.ClassS
	NPBClassW = npb.ClassW
	NPBClassA = npb.ClassA
	NPBClassB = npb.ClassB
)

// NPBNames lists the implemented NAS Parallel Benchmarks in figure order.
func NPBNames() []string { return npb.Names() }

// ExperimentInfo is one experiment-registry entry: id, one-line
// description (from its scenario's metadata) and runner.
type ExperimentInfo = core.ExperimentInfo

// Experiments returns every paper experiment in figure order.
func Experiments() []ExperimentInfo { return core.Experiments() }

// GetExperiment finds an experiment by figure id ("fig05" ... "fig17").
func GetExperiment(id string) (ExperimentFunc, error) { return core.GetExperiment(id) }

// The declarative scenario layer (internal/scenario): one text file — or
// one Scenario value — describes a whole run: the virtual grid (machine
// spec or GIS reference), topology, emulation policy, workload, retry
// policy, tracing and an optional chaos schedule. Every figure
// experiment is built through this path, and `mgrid -scenario file`
// runs user-authored scenarios end to end.
type (
	// Scenario is the parsed declarative description of a run.
	Scenario = scenario.Scenario
	// ScenarioMachine is a machine spec inside a scenario.
	ScenarioMachine = scenario.Machine
	// ScenarioWorkload selects and parameterizes the application.
	ScenarioWorkload = scenario.Workload
	// ScenarioGIS references a GIS-defined virtual grid.
	ScenarioGIS = scenario.GISRef
	// ScenarioEnv resolves a scenario's external references.
	ScenarioEnv = core.ScenarioEnv
	// ScenarioPartition places topology clusters on PDES shards
	// (`partition auto` / `partition map node=shard ...`).
	ScenarioPartition = scenario.PartitionSpec
	// PartitionConfig is the build-level cluster→shard placement.
	PartitionConfig = core.PartitionConfig
)

// ParseScenario parses the scenario text format.
func ParseScenario(text string) (*Scenario, error) { return scenario.ParseString(text) }

// LoadScenario parses a scenario file; errors name the file and line.
func LoadScenario(path string) (*Scenario, error) { return scenario.Load(path) }

// ScenarioMachineOf converts a MachineConfig (e.g. AlphaCluster) to its
// scenario machine spec.
func ScenarioMachineOf(c MachineConfig) *ScenarioMachine { return core.MachineSpec(c) }

// BuildScenario constructs the MicroGrid a scenario describes and arms
// its chaos schedule.
func BuildScenario(s *Scenario) (*MicroGrid, error) { return core.BuildScenario(s) }

// BuildScenarioEnv is BuildScenario with explicit reference resolution
// (in-memory GIS, base directory for relative paths).
func BuildScenarioEnv(s *Scenario, env ScenarioEnv) (*MicroGrid, error) {
	return core.BuildScenarioEnv(s, env)
}

// RunScenario builds the scenario's grid and runs its workload.
func RunScenario(s *Scenario) (*Report, error) { return core.RunScenario(s) }

// RunScenarioEnv is RunScenario with explicit reference resolution
// (in-memory GIS, base directory for relative paths).
func RunScenarioEnv(s *Scenario, env ScenarioEnv) (*Report, error) {
	return core.RunScenarioEnv(s, env)
}

// FormatScenarioReport renders a scenario run's deterministic text
// report — the exact bytes `mgrid -scenario` prints and mgridd stores as
// a run's stdout artifact.
func FormatScenarioReport(scenarioName string, r *Report) string {
	return core.FormatScenarioReport(scenarioName, r)
}

// Campaign runner types. The runner executes many experiments on a
// bounded worker pool — each in its own isolated engine — with
// per-experiment timeouts, one retry on failure, and machine-readable
// artifacts. Results are deterministic: any worker count produces the
// same tables and metrics.
type (
	// CampaignTask is one unit of campaign work.
	CampaignTask = runner.Task
	// CampaignResult is the outcome of one task.
	CampaignResult = runner.Result
	// CampaignOptions tune RunCampaign.
	CampaignOptions = runner.Options
	// CampaignStatus classifies a result.
	CampaignStatus = runner.Status
)

// Campaign result statuses.
const (
	CampaignOK       = runner.StatusOK
	CampaignFailed   = runner.StatusFailed
	CampaignTimeout  = runner.StatusTimeout
	CampaignCanceled = runner.StatusCanceled
)

// Campaign returns one task per registered experiment, in paper order.
func Campaign(quick bool) []CampaignTask { return runner.Campaign(quick) }

// Fault injection (the chaos subsystem). A ChaosSchedule — built
// programmatically or parsed from text — is armed against a MicroGrid
// with MicroGrid.ArmChaos before RunApp; all jitter comes from the
// engine's seeded RNG, so one seed plus one schedule reproduces the same
// faults at any worker count.
type (
	// ChaosSchedule is a named, ordered fault plan.
	ChaosSchedule = chaos.Schedule
	// ChaosEvent is one scheduled fault.
	ChaosEvent = chaos.Event
	// ChaosInjector arms schedules against a simulation.
	ChaosInjector = chaos.Injector
	// SubmitRetryPolicy configures recovery for RunOptions.SubmitPolicy:
	// per-attempt status timeout, bounded retries with jittered
	// exponential backoff, and failover to alternate GIS-discovered hosts.
	SubmitRetryPolicy = globus.SubmitRetryPolicy
)

// ParseChaosSchedule parses the chaos schedule text format.
func ParseChaosSchedule(text string) (*ChaosSchedule, error) {
	return chaos.ParseScheduleString(text)
}

// LoadChaosSchedule parses a chaos schedule file.
func LoadChaosSchedule(path string) (*ChaosSchedule, error) {
	return chaos.LoadSchedule(path)
}

// RunCampaign executes tasks on opts.Workers goroutines, returning one
// result per task in task order. Failures never abort the campaign.
func RunCampaign(ctx context.Context, tasks []CampaignTask, opts CampaignOptions) []CampaignResult {
	return runner.Run(ctx, tasks, opts)
}

// WriteCampaignArtifacts writes campaign.json (deterministic results)
// and timings.csv (operational record) into dir.
func WriteCampaignArtifacts(dir string, results []CampaignResult, quick bool) error {
	return runner.WriteArtifacts(dir, results, quick)
}

// Structured tracing (internal/trace): deterministic, virtual-time typed
// events over every layer of the stack. Arm it globally with
// EnableTracing before building grids (cmd/mgrid's -trace flag does
// this), or per instance via BuildConfig.Trace; export the collected
// runs as compact JSONL or Chrome trace-event JSON (Perfetto).
type (
	// TraceConfig selects trace categories and ring-buffer capacity.
	TraceConfig = core.TraceConfig
	// TraceCategory is the per-subsystem trace category bitmask.
	TraceCategory = trace.Category
	// TraceEvent is one trace record (virtual-time instant or span).
	TraceEvent = trace.Event
	// TraceRun is one recorder's exported snapshot.
	TraceRun = trace.Run
)

// TraceAll enables every trace category.
const TraceAll = trace.CatAll

// ParseTraceCategories parses a category list like "net,mpi" or
// "all,-engine".
func ParseTraceCategories(s string) (TraceCategory, error) { return trace.ParseCategories(s) }

// EnableTracing arms global tracing for all subsequently built grids.
func EnableTracing(cfg TraceConfig) { core.EnableTracing(cfg) }

// SetEngineShards installs a process-wide simulation-engine override for
// all subsequently built grids: n ≥ 1 forces the conservative parallel
// engine with n shards (cmd/mgrid's and cmd/mgridrun's -shards flag does
// this), 0 restores the per-scenario engine choice.
func SetEngineShards(n int) { core.SetEngineShards(n) }

// SetEnginePartition installs a process-wide partition override for all
// subsequently built grids (cmd/mgrid's and cmd/mgridrun's -partition
// flag does this); nil restores the per-scenario partition choice.
func SetEnginePartition(pc *PartitionConfig) { core.SetEnginePartition(pc) }

// ParsePartitionFlag parses a -partition CLI value: "auto", or a
// comma-separated "node=shard,..." pin list ("" = nil).
func ParsePartitionFlag(v string) (*PartitionConfig, error) { return core.ParsePartitionFlag(v) }

// PartitionPreview resolves a scenario's partition offline: the
// node→shard placement, the synchronization lookahead, and the shard
// count the build would use (nil map = partitioning would be a no-op).
func PartitionPreview(s *Scenario) (map[string]int, Duration, int, error) {
	return core.PartitionPreview(s)
}

// ResetTracing disarms global tracing and drops collected recorders.
func ResetTracing() { core.ResetTracing() }

// TraceSnapshots returns the collected trace runs in build order.
func TraceSnapshots() []TraceRun { return core.TraceSnapshots() }

// WriteTraceJSONL writes the collected trace runs as compact JSONL.
func WriteTraceJSONL(w io.Writer) error { return core.WriteTraceJSONL(w) }

// WriteTraceChrome writes the collected trace runs as Chrome trace-event
// JSON, loadable in Perfetto or chrome://tracing.
func WriteTraceChrome(w io.Writer) error { return core.WriteTraceChrome(w) }
