package microgrid

import (
	"microgrid/internal/cactus"
	"microgrid/internal/npb"
	"microgrid/internal/topology"
	"microgrid/internal/workqueue"
)

// TopoSpec describes a custom network topology for BuildConfig.Topo.
type TopoSpec = topology.Spec

// NPBHooks observes NPB kernel progress (Autopilot integration).
type NPBHooks = npb.Hooks

// RunNPB executes a NAS Parallel Benchmark kernel ("EP", "BT", "LU",
// "MG", "IS") on the rank's communicator. Use it inside a RunApp function:
//
//	m.RunApp("mg.A.4", func(ctx *microgrid.AppContext) error {
//		return microgrid.RunNPB(ctx, "MG", microgrid.NPBClassA, nil)
//	}, microgrid.RunOptions{})
func RunNPB(ctx *AppContext, bench string, class NPBClass, hooks *NPBHooks) error {
	fn, err := npb.Get(bench)
	if err != nil {
		return err
	}
	return fn(ctx.Comm, npb.Params{Class: class, Hooks: hooks})
}

// WaveToyParams configures the CACTUS WaveToy application.
type WaveToyParams = cactus.Params

// RunWaveToy executes the CACTUS WaveToy PDE solver on the rank's
// communicator.
func RunWaveToy(ctx *AppContext, p WaveToyParams) error {
	return cactus.RunWaveToy(ctx.Comm, p)
}

// ParseWaveToyParFile parses a Cactus-style parameter file into WaveToy
// parameters (plus unrecognized thorn parameters).
var ParseWaveToyParFile = cactus.ParseParFile

// VBNSSpec builds the paper's fictional vBNS wide-area testbed topology
// (Fig. 13): two campus LANs joined across OC3 access links and a varied
// backbone bottleneck. Hosts are named ucsd0..N-1 and uiuc0..N-1.
func VBNSSpec(hostsPerSite int, bottleneckBps float64) (*TopoSpec, error) {
	return topology.VBNSSpec(topology.VBNSConfig{
		HostsPerSite:  hostsPerSite,
		BottleneckBps: bottleneckBps,
	})
}

// OC bandwidths for wide-area configurations.
const (
	OC3Bps  = topology.OC3Bps
	OC12Bps = topology.OC12Bps
)

// WorkQueueConfig configures the adaptive master/worker workload.
type WorkQueueConfig = workqueue.Config

// WorkQueueResult summarizes a master/worker run.
type WorkQueueResult = workqueue.Result

// Work-queue scheduling policies.
const (
	WorkQueueStatic         = workqueue.Static
	WorkQueueSelfScheduling = workqueue.SelfScheduling
)

// RunWorkQueue executes the adaptive master/worker farm on the rank's
// communicator (rank 0 is the master). Only rank 0 receives a non-nil
// result.
func RunWorkQueue(ctx *AppContext, cfg WorkQueueConfig) (*WorkQueueResult, error) {
	return workqueue.Run(ctx.Comm, cfg)
}
