package microgrid_test

import (
	"context"
	"fmt"
	"strings"

	"microgrid"
)

// The minimal end-to-end flow: model the paper's Alpha cluster, run an
// MPI application through the virtualized Globus stack, read virtual-time
// results.
func ExampleBuild() {
	m, err := microgrid.Build(microgrid.BuildConfig{
		Seed:   1,
		Target: microgrid.AlphaCluster,
	})
	if err != nil {
		panic(err)
	}
	report, err := m.RunApp("demo", func(ctx *microgrid.AppContext) error {
		ctx.Proc.ComputeVirtualSeconds(1.0)
		return ctx.Comm.Barrier()
	}, microgrid.RunOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d hosts, rate %.1f, ran %.1f virtual seconds\n",
		len(m.Hosts), m.Rate(), report.VirtualElapsed.Seconds())
	// Output: 4 hosts, rate 1.0, ran 1.0 virtual seconds
}

// Emulation mode: the same target modeled on physical machines at half
// speed. The application still observes one virtual second.
func ExampleBuild_emulated() {
	emu := microgrid.AlphaCluster
	m, err := microgrid.Build(microgrid.BuildConfig{
		Seed:      1,
		Target:    microgrid.AlphaCluster,
		Emulation: &emu,
		Rate:      0.5,
	})
	if err != nil {
		panic(err)
	}
	report, err := m.RunApp("demo", func(ctx *microgrid.AppContext) error {
		ctx.Proc.ComputeVirtualSeconds(1.0)
		return nil
	}, microgrid.RunOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("virtual %.1fs, emulation wallclock ≈%.0fx longer\n",
		report.VirtualElapsed.Seconds(),
		report.PhysicalElapsed.Seconds()/report.VirtualElapsed.Seconds())
	// Output: virtual 1.0s, emulation wallclock ≈2x longer
}

// The campaign runner executes experiments on a worker pool, each in
// its own isolated engine. Tables and metrics are deterministic for any
// worker count; only wall-clock timings vary.
func ExampleRunCampaign() {
	tasks := microgrid.Campaign(true)[:1] // fig05 at quick scale
	results := microgrid.RunCampaign(context.Background(), tasks,
		microgrid.CampaignOptions{Workers: 4})
	r := results[0]
	fmt.Printf("%s %s slope=%.3f\n", r.ID, r.Status, r.Experiment.Metrics["slope"])
	// Output: fig05 ok slope=1.000
}

// Grids can be defined entirely by GIS records (the paper's Fig. 3
// format) and instantiated with BuildFromGIS.
func ExampleBuildFromGIS() {
	ldif := `
dn: hn=vm.ucsd.edu, ou=CSAG, o=Grid
Is_Virtual_Resource: Yes
Configuration_Name: Demo
Mapped_Physical_Resource: csag-226-67.ucsd.edu
CpuSpeed: 10
MemorySize: 100MBytes
Virtual_IP: 1.11.11.2
`
	server, err := microgrid.LoadGIS(strings.NewReader(ldif))
	if err != nil {
		panic(err)
	}
	m, err := microgrid.BuildFromGIS(server, "Demo", microgrid.GISBuildOptions{Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: %v\n", m.ConfigName, m.Hosts)
	// Output: Demo: [vm.ucsd.edu]
}
