// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation, regenerating the same rows/series at paper scale, plus
// ablation benches for design choices called out in DESIGN.md.
//
// Run everything (slow — the class-A figures take tens of seconds each):
//
//	go test -bench=. -benchmem
//
// Or a single figure:
//
//	go test -bench=BenchmarkFig10 -benchtime=1x
//
// Each bench prints its regenerated table once and reports the figure's
// key error metrics via b.ReportMetric.
package microgrid

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"sync"
	"testing"

	"microgrid/internal/core"
	"microgrid/internal/cpusched"
	"microgrid/internal/netsim"
	"microgrid/internal/scenario"
	"microgrid/internal/simcore"
	"microgrid/internal/topology"
	"microgrid/internal/trace"
)

// printOnce guards table printing so -benchtime iterations don't spam.
var printOnce sync.Map

func runExperiment(b *testing.B, id string, metricsOut map[string]string) {
	b.Helper()
	fn, err := core.GetExperiment(id)
	if err != nil {
		b.Fatal(err)
	}
	var exp *core.Experiment
	for i := 0; i < b.N; i++ {
		exp, err = fn(false)
		if err != nil {
			b.Fatal(err)
		}
	}
	if _, dup := printOnce.LoadOrStore(id, true); !dup {
		b.Logf("\n%s", exp.Table.String())
		for _, n := range exp.Notes {
			b.Logf("note: %s", n)
		}
	}
	for metric, unit := range metricsOut {
		if v, ok := exp.Metrics[metric]; ok {
			b.ReportMetric(v, unit)
		}
	}
}

// BenchmarkFig05MemoryLimit — memory capacity enforcement (Fig. 5).
func BenchmarkFig05MemoryLimit(b *testing.B) {
	runExperiment(b, "fig05", map[string]string{"overhead_bytes": "overhead_B", "slope": "slope"})
}

// BenchmarkFig06CPUFraction — delivered vs specified CPU fraction under
// competition (Fig. 6).
func BenchmarkFig06CPUFraction(b *testing.B) {
	runExperiment(b, "fig06", map[string]string{
		"spec50_none": "none@50_%", "spec90_cpu": "cpu@90_%",
	})
}

// BenchmarkFig07QuantaDistribution — quanta-size stability (Fig. 7).
func BenchmarkFig07QuantaDistribution(b *testing.B) {
	runExperiment(b, "fig07", map[string]string{
		"dev_none": "dev_none", "dev_cpu": "dev_cpu", "dev_io": "dev_io",
	})
}

// BenchmarkFig08NetworkModel — NSE latency/bandwidth modeling (Fig. 8).
func BenchmarkFig08NetworkModel(b *testing.B) {
	runExperiment(b, "fig08", map[string]string{
		"worst_latency_err_pct": "lat_err_%", "worst_bandwidth_err_pct": "bw_err_%",
	})
}

// BenchmarkFig09Configurations — the configurations table (Fig. 9).
func BenchmarkFig09Configurations(b *testing.B) {
	runExperiment(b, "fig09", nil)
}

// BenchmarkFig10NPBClassA — NPB class A totals, physical vs MicroGrid on
// both configurations (Fig. 10). The headline validation.
func BenchmarkFig10NPBClassA(b *testing.B) {
	runExperiment(b, "fig10", map[string]string{"worst_err_pct": "worst_err_%"})
}

// BenchmarkFig11QuantumSweep — scheduling-quantum ablation on class S
// (Fig. 11); this is also DESIGN.md's quantum ablation.
func BenchmarkFig11QuantumSweep(b *testing.B) {
	runExperiment(b, "fig11", map[string]string{
		"MG_err_pct_2.5ms": "MG@2.5ms_err_%", "MG_err_pct_30ms": "MG@30ms_err_%",
	})
}

// BenchmarkFig12CPUScaling — CPU-scaling extrapolation at fixed slow
// network (Fig. 12).
func BenchmarkFig12CPUScaling(b *testing.B) {
	runExperiment(b, "fig12", map[string]string{
		"EP_norm_8x": "EP_norm_8x", "MG_norm_8x": "MG_norm_8x",
	})
}

// BenchmarkFig14VBNSDegrade — NPB over the vBNS testbed with WAN
// bandwidth sweep (Figs. 13–14).
func BenchmarkFig14VBNSDegrade(b *testing.B) {
	runExperiment(b, "fig14", map[string]string{
		"EP_622M_s": "EP@622M_s", "EP_10M_s": "EP@10M_s",
	})
}

// BenchmarkFig15EmulationRates — rate-invariance of virtual-time results
// (Fig. 15).
func BenchmarkFig15EmulationRates(b *testing.B) {
	runExperiment(b, "fig15", map[string]string{
		"EP_norm_8x": "EP_norm_8x", "MG_norm_8x": "MG_norm_8x",
	})
}

// BenchmarkFig16Cactus — CACTUS WaveToy full-application validation
// (Fig. 16).
func BenchmarkFig16Cactus(b *testing.B) {
	runExperiment(b, "fig16", map[string]string{"worst_err_pct": "worst_err_%"})
}

// BenchmarkFig17Autopilot — internal validation by Autopilot traces at
// simulation rate 0.04 (Fig. 17). The slowest figure: class A emulated at
// 4% CPU.
func BenchmarkFig17Autopilot(b *testing.B) {
	runExperiment(b, "fig17", map[string]string{
		"EP_skew_pct": "EP_skew_%", "BT_skew_pct": "BT_skew_%", "MG_skew_pct": "MG_skew_%",
	})
}

// BenchmarkAblationSendOverhead — DESIGN.md ablation: the per-message CPU
// overhead model's effect on small-message latency.
func BenchmarkAblationSendOverhead(b *testing.B) {
	for _, overhead := range []float64{1, 8000, 80000} {
		overhead := overhead
		b.Run(fmt.Sprintf("ops=%g", overhead), func(b *testing.B) {
			var lat simcore.Duration
			for i := 0; i < b.N; i++ {
				m, err := core.Build(core.BuildConfig{
					Seed:            1,
					Target:          core.AlphaCluster.WithProcs(2),
					SendOverheadOps: overhead,
				})
				if err != nil {
					b.Fatal(err)
				}
				lat, err = core.PingPongOneWay(m, 4)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(lat)/1000, "oneway_us")
		})
	}
}

// BenchmarkAblationChargePolicy — DESIGN.md ablation: the paper's
// wall-time charging (Fig. 4) vs actual-CPU charging under a CPU hog.
func BenchmarkAblationChargePolicy(b *testing.B) {
	for _, chargeCPU := range []bool{false, true} {
		chargeCPU := chargeCPU
		name := "wall-time"
		if chargeCPU {
			name = "actual-cpu"
		}
		b.Run(name, func(b *testing.B) {
			var delivered float64
			for i := 0; i < b.N; i++ {
				eng := simcore.NewEngine(3)
				h := cpusched.NewHost(eng, "h", 533, 0)
				cpusched.StartCPUCompetitor(h, "hog")
				job := h.NewTask("job")
				fc := cpusched.NewFractionController(h, job, 0.45)
				fc.ChargeActualCPU = chargeCPU
				fc.Spawn()
				jp := eng.Spawn("job", func(p *simcore.Proc) {
					for {
						job.ComputeSeconds(p, 1)
					}
				})
				jp.SetDaemon(true)
				eng.Spawn("end", func(p *simcore.Proc) {
					p.Sleep(30 * simcore.Second)
					eng.Stop()
				})
				if err := eng.Run(); err != nil {
					b.Fatal(err)
				}
				delivered = job.UsedCPU().Seconds() / 30
			}
			b.ReportMetric(100*delivered, "delivered_%")
		})
	}
}

// BenchmarkAblationPhaseAlignment — DESIGN.md ablation: scheduler-daemon
// phase alignment across machines. Aligned daemons (spread 0) give the
// tight class-A matches of Fig. 10; staggered daemons reproduce Fig. 11's
// quantum-dependent error. Measured on MG class S, quantum 10 ms.
func BenchmarkAblationPhaseAlignment(b *testing.B) {
	for _, spread := range []float64{0, 0.25, 1.0} {
		spread := spread
		b.Run(fmt.Sprintf("spread=%g", spread), func(b *testing.B) {
			var errPct float64
			for i := 0; i < b.N; i++ {
				phys, err := core.RunNPBOnce(core.BuildConfig{
					Seed: 21, Target: core.AlphaCluster,
				}, "MG", 'S')
				if err != nil {
					b.Fatal(err)
				}
				emu, err := core.RunNPBOnce(core.BuildConfig{
					Seed: 21, Target: core.AlphaCluster,
					Emulation: &core.AlphaCluster, Rate: 0.5,
					StaggerSpread: spread,
				}, "MG", 'S')
				if err != nil {
					b.Fatal(err)
				}
				errPct = 100 * math.Abs(emu.Seconds()-phys.Seconds()) / phys.Seconds()
			}
			b.ReportMetric(errPct, "err_%")
		})
	}
}

// BenchmarkAblationNetworkFidelity — the speed-vs-fidelity axis: IS class
// S (the most network-intensive kernel) under packet-level vs analytic
// flow-level network modeling. Reports the modeled time and, implicitly
// via ns/op, the simulation speedup flow mode buys.
func BenchmarkAblationNetworkFidelity(b *testing.B) {
	for _, flow := range []bool{false, true} {
		flow := flow
		name := "packet-level"
		if flow {
			name = "flow-level"
		}
		b.Run(name, func(b *testing.B) {
			var elapsed simcore.Duration
			for i := 0; i < b.N; i++ {
				var err error
				elapsed, err = core.RunNPBOnce(core.BuildConfig{
					Seed: 22, Target: core.AlphaCluster, FlowNetwork: flow,
				}, "IS", 'S')
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(elapsed.Seconds(), "modeled_s")
		})
	}
}

// BenchmarkExtraCrossTraffic goes beyond the paper's figures: NPB MG over
// the vBNS testbed while CBR background traffic consumes 0 / 50 / 90% of
// the 10 Mb/s WAN bottleneck — the competing-load dimension the paper
// contrasts with the Bricks project.
func BenchmarkExtraCrossTraffic(b *testing.B) {
	for _, loadPct := range []float64{0, 50, 90} {
		loadPct := loadPct
		b.Run(fmt.Sprintf("load=%g%%", loadPct), func(b *testing.B) {
			var modeled float64
			for i := 0; i < b.N; i++ {
				spec, err := topology.VBNSSpec(topology.VBNSConfig{
					HostsPerSite:  3, // third host per site carries the cross traffic
					BottleneckBps: 10e6,
				})
				if err != nil {
					b.Fatal(err)
				}
				m, err := core.Build(core.BuildConfig{
					Seed:      23,
					Target:    core.AlphaCluster,
					Topo:      spec,
					HostRanks: []string{"ucsd0", "ucsd1", "uiuc0", "uiuc1"},
				})
				if err != nil {
					b.Fatal(err)
				}
				if loadPct > 0 {
					nw := m.Grid.Network()
					src, dst := nw.Node("ucsd2"), nw.Node("uiuc2")
					netsim.CountingSink(dst, 99)
					gen, err := netsim.StartCBR(src, dst, 99, 10e6*loadPct/100, 1000)
					if err != nil {
						b.Fatal(err)
					}
					// Bound the generator's lifetime so the simulation
					// drains after the job completes.
					m.Eng.After(60*simcore.Second, gen.Stop)
				}
				report, err := m.RunApp("MG", func(ctx *AppContext) error {
					return RunNPB(ctx, "MG", NPBClassS, nil)
				}, core.RunOptions{})
				if err != nil {
					b.Fatal(err)
				}
				modeled = report.VirtualElapsed.Seconds()
			}
			b.ReportMetric(modeled, "modeled_s")
		})
	}
}

// BenchmarkEngineEventThroughput measures the DES core's raw event rate —
// the scalability budget the paper's future-work section worries about.
func BenchmarkEngineEventThroughput(b *testing.B) {
	eng := simcore.NewEngine(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			eng.After(simcore.Microsecond, tick)
		}
	}
	b.ResetTimer()
	eng.After(simcore.Microsecond, tick)
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEngineEventThroughputTraceOff is the event-throughput bench
// with a recorder attached but every category masked off: it pins the
// cost of the disabled-tracing fast path on the dispatch hot loop, which
// must stay within the regression gate of the untraced bench.
func BenchmarkEngineEventThroughputTraceOff(b *testing.B) {
	eng := simcore.NewEngine(1)
	eng.SetRecorder(trace.NewRecorder(0, 0))
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			eng.After(simcore.Microsecond, tick)
		}
	}
	b.ResetTimer()
	eng.After(simcore.Microsecond, tick)
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
}

// benchParallelRing is the shard-scaling workload behind
// BenchmarkParallelEngineEvents: every shard drives a 1 µs local tick
// chain (Fig. 10-class event density — the NPB runs dispatch events at
// microsecond cadence) and every 256th tick sends a cross-shard event to
// its ring neighbor one lookahead (1 ms) ahead. With a 1 ms lookahead
// each barrier window covers ~1000 events per shard, so the windowing
// overhead is amortized the way a real multi-cluster run would amortize
// it over WAN latency.
func benchParallelRing(b *testing.B, shards int) {
	pe := simcore.NewParallelEngine(1, shards)
	pe.SetLookahead(simcore.Millisecond)
	perShard := b.N / shards
	if perShard == 0 {
		perShard = 1
	}
	for i := 0; i < shards; i++ {
		i := i
		eng := pe.Shard(i)
		n := 0
		var tick func()
		tick = func() {
			n++
			if n%256 == 0 {
				pe.Send(i, (i+1)%shards, eng.Now().Add(simcore.Millisecond), func() {})
			}
			if n < perShard {
				eng.After(simcore.Microsecond, tick)
			}
		}
		eng.After(simcore.Microsecond, tick)
	}
	b.ResetTimer()
	if err := pe.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
	b.ReportMetric(float64(pe.Windows()), "windows")
}

// BenchmarkParallelEngineEvents pins the conservative parallel engine's
// event throughput against the serial engine on the same ring workload
// (see DESIGN.md §10). shards=1 measures the pure windowing overhead —
// no goroutines are spawned for a single active shard — and shards=2..8
// measure barrier-synchronized scaling. Events/sec scaling beyond 1×
// requires real cores: on a single-CPU runner the parallel sub-benches
// pin the coordination overhead instead.
func BenchmarkParallelEngineEvents(b *testing.B) {
	b.Run("serial", func(b *testing.B) {
		se := simcore.NewSerialEngine(1)
		n := 0
		var tick func()
		tick = func() {
			n++
			if n%256 == 0 {
				se.After(simcore.Millisecond, func() {})
			}
			if n < b.N {
				se.After(simcore.Microsecond, tick)
			}
		}
		b.ResetTimer()
		se.After(simcore.Microsecond, tick)
		if err := se.Run(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
	})
	for _, shards := range []int{1, 2, 4, 8} {
		shards := shards
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchParallelRing(b, shards)
		})
	}
}

// benchPartitionedFig14 runs NPB MG class W over the vBNS testbed (the
// Fig. 14 grid scaled to four hosts per site, four ranks at UCSD and
// four at UIUC) once per iteration, serial or partitioned across shards
// with automatic cluster placement, and reports the model's event
// throughput. The scale matters: ~250k events over ~4600 one-millisecond
// lookahead windows gives each campus shard enough work per window to
// amortize the barrier. Real events/sec scaling still needs real cores:
// on a single-CPU runner the shard sub-benches pin the partition layer's
// coordination overhead instead, and CI's speedup gate (cmd/benchjson
// -speedup) only arms itself on multi-core machines.
func benchPartitionedFig14(b *testing.B, shards int) {
	var events int64
	for i := 0; i < b.N; i++ {
		spec, err := topology.VBNSSpec(topology.VBNSConfig{
			HostsPerSite:  4,
			BottleneckBps: topology.OC12Bps,
		})
		if err != nil {
			b.Fatal(err)
		}
		s := core.Fig14Scenario()
		s.Topology = spec
		s.HostRanks = []string{
			"ucsd0", "ucsd1", "ucsd2", "ucsd3",
			"uiuc0", "uiuc1", "uiuc2", "uiuc3",
		}
		s.Workload.Bench = "MG"
		s.Workload.Class = 'W'
		s.Workload.Ranks = 8
		if shards > 0 {
			s.EngineShards = shards
			s.Partition = &ScenarioPartition{Auto: true}
		}
		m, err := core.BuildScenario(s)
		if err != nil {
			b.Fatal(err)
		}
		if shards > 0 && !m.Partitioned() {
			b.Fatal("vBNS build did not partition")
		}
		if _, err := m.RunWorkload(s); err != nil {
			b.Fatal(err)
		}
		if pe := m.ParallelEngine(); pe != nil {
			for j := 0; j < pe.NumShards(); j++ {
				events += pe.Shard(j).Dispatched()
			}
		} else {
			events += m.Eng.Dispatched()
		}
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkPartitionedFig14 pins the tentpole of the partitioned-model
// work: the same multi-cluster figure workload on the serial engine and
// on the partitioned parallel engine at 2 and 4 shards. The runs are
// byte-identical in their results (TestPartitionedRunByteIdentical);
// this bench measures what the partition buys in events/sec.
func BenchmarkPartitionedFig14(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchPartitionedFig14(b, 0) })
	for _, shards := range []int{2, 4} {
		shards := shards
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchPartitionedFig14(b, shards)
		})
	}
}

// BenchmarkScale100k pins the scalable resource model's economics:
// build and run the committed 100k-host example (a generated star grid,
// flow-fidelity wide area, NPB MG on an 8-rank working set) and report
// allocated bytes per DECLARED host. Laziness is the whole claim —
// untouched declarations must cost a few hundred bytes (a HostConfig,
// a netsim node, an address map entry), not a scheduler, gatekeeper
// daemon, and GIS row each — so CI holds bytes/host under an absolute
// ceiling (cmd/benchjson -ceiling), which a regression to eager
// materialization would blow past by orders of magnitude.
func BenchmarkScale100k(b *testing.B) {
	data, err := os.ReadFile("examples/scale-100k/scale100k.scenario")
	if err != nil {
		b.Fatal(err)
	}
	s, err := scenario.ParseString(string(data))
	if err != nil {
		b.Fatal(err)
	}
	var bytesPerHost, live float64
	for i := 0; i < b.N; i++ {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		m, err := core.BuildScenarioEnv(s, core.ScenarioEnv{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.RunWorkload(s); err != nil {
			b.Fatal(err)
		}
		runtime.ReadMemStats(&after)
		declared := m.Grid.DeclaredHosts()
		if declared < 100000 {
			b.Fatalf("example declares %d hosts, want >= 100000", declared)
		}
		bytesPerHost = float64(after.TotalAlloc-before.TotalAlloc) / float64(declared)
		live = float64(m.Grid.MaterializedCount())
	}
	b.ReportMetric(bytesPerHost, "bytes/host")
	b.ReportMetric(live, "hosts_live")
}

// BenchmarkProcContextSwitch measures process park/resume cost.
func BenchmarkProcContextSwitch(b *testing.B) {
	eng := simcore.NewEngine(1)
	eng.Spawn("p", func(p *simcore.Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(simcore.Microsecond)
		}
	})
	b.ResetTimer()
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
}
