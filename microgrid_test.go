package microgrid

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestPublicAPIQuickstart(t *testing.T) {
	m, err := Build(BuildConfig{Seed: 1, Target: AlphaCluster})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Hosts) != 4 || m.Rate() != 1 {
		t.Fatalf("hosts=%v rate=%v", m.Hosts, m.Rate())
	}
	report, err := m.RunApp("api-test", func(ctx *AppContext) error {
		if ctx.Proc.Gethostname() == "" {
			return fmt.Errorf("no hostname")
		}
		ctx.Proc.ComputeVirtualSeconds(0.2)
		return ctx.Comm.Barrier()
	}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(report.VirtualElapsed.Seconds()-0.2) > 0.02 {
		t.Fatalf("elapsed = %v", report.VirtualElapsed)
	}
}

func TestPublicAPINPB(t *testing.T) {
	m, err := Build(BuildConfig{Seed: 2, Target: AlphaCluster})
	if err != nil {
		t.Fatal(err)
	}
	report, err := m.RunApp("is.S.4", func(ctx *AppContext) error {
		return RunNPB(ctx, "IS", NPBClassS, nil)
	}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if report.VirtualElapsed <= 0 {
		t.Fatalf("elapsed = %v", report.VirtualElapsed)
	}
}

func TestPublicAPIWaveToyWithParFile(t *testing.T) {
	params, _, err := ParseWaveToyParFile(strings.NewReader(
		"driver::global_nsize = 20\ncactus::cctk_itlast = 10\n"))
	if err != nil {
		t.Fatal(err)
	}
	m, err := Build(BuildConfig{Seed: 3, Target: AlphaCluster})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunApp("wavetoy", func(ctx *AppContext) error {
		return RunWaveToy(ctx, params)
	}, RunOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIVBNS(t *testing.T) {
	spec, err := VBNSSpec(2, OC3Bps)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Build(BuildConfig{
		Seed:      4,
		Target:    AlphaCluster,
		Topo:      spec,
		HostRanks: []string{"ucsd0", "ucsd1", "uiuc0", "uiuc1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := m.RunApp("ep", func(ctx *AppContext) error {
		return RunNPB(ctx, "EP", NPBClassS, nil)
	}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if report.VirtualElapsed <= 0 {
		t.Fatal("no elapsed time")
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Experiments() {
		ids[e.ID] = true
	}
	for _, want := range []string{"fig05", "fig06", "fig07", "fig08", "fig09",
		"fig10", "fig11", "fig12", "fig14", "fig15", "fig16", "fig17"} {
		if !ids[want] {
			t.Errorf("experiment %s missing", want)
		}
	}
	if _, err := GetExperiment("fig16"); err != nil {
		t.Fatal(err)
	}
}

// TestPublicCampaignAPI drives the campaign runner through the public
// surface: registry-backed tasks mixed with a synthetic failure, results
// in task order, artifacts on disk.
func TestPublicCampaignAPI(t *testing.T) {
	tasks := Campaign(true)
	if len(tasks) != len(Experiments()) || tasks[0].ID != "fig05" {
		t.Fatalf("campaign = %d tasks, first %q", len(tasks), tasks[0].ID)
	}
	boom := CampaignTask{ID: "boom", Run: func(ctx context.Context) (*Experiment, error) {
		return nil, fmt.Errorf("kaput")
	}}
	results := RunCampaign(context.Background(),
		[]CampaignTask{tasks[0], boom}, CampaignOptions{Workers: 2, Retries: -1})
	if results[0].Status != CampaignOK || results[0].Experiment.ID != "fig05" {
		t.Fatalf("fig05 result = %+v", results[0])
	}
	if results[1].Status != CampaignFailed || results[1].Err == nil {
		t.Fatalf("boom result = %+v", results[1])
	}
	dir := t.TempDir()
	if err := WriteCampaignArtifacts(dir, results, true); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"campaign.json", "timings.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing artifact: %v", err)
		}
	}
}

func TestNPBNames(t *testing.T) {
	names := NPBNames()
	if len(names) != 5 {
		t.Fatalf("names = %v", names)
	}
}

// TestScalesToDozensOfHosts addresses the paper's near-term goal of
// "scaling to dozens of machines": a 32-host virtual grid running EP
// end-to-end through the Globus stack.
func TestScalesToDozensOfHosts(t *testing.T) {
	m, err := Build(BuildConfig{Seed: 5, Target: AlphaCluster.WithProcs(32)})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Hosts) != 32 {
		t.Fatalf("hosts = %d", len(m.Hosts))
	}
	report, err := m.RunApp("ep32", func(ctx *AppContext) error {
		if ctx.Comm.Size() != 32 {
			return fmt.Errorf("size = %d", ctx.Comm.Size())
		}
		return RunNPB(ctx, "EP", NPBClassS, nil)
	}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// EP scales: 32 ranks ≈ 8× faster than 4 ranks (~3.5s → ~0.45s).
	if report.VirtualElapsed.Seconds() > 1.0 {
		t.Fatalf("EP on 32 hosts took %v", report.VirtualElapsed)
	}
}

// TestRanksPerHost runs 8 EP ranks on 4 virtual hosts (GRAM count >
// hosts): two ranks timeshare each virtual CPU, so the wall time matches
// the 4-rank run (same per-host work) rather than the 8-host run.
func TestRanksPerHost(t *testing.T) {
	run := func(rph int) float64 {
		m, err := Build(BuildConfig{Seed: 7, Target: AlphaCluster})
		if err != nil {
			t.Fatal(err)
		}
		wantRanks := 4 * rph
		report, err := m.RunApp("ep", func(ctx *AppContext) error {
			if ctx.Comm.Size() != wantRanks {
				return fmt.Errorf("size = %d, want %d", ctx.Comm.Size(), wantRanks)
			}
			return RunNPB(ctx, "EP", NPBClassS, nil)
		}, RunOptions{RanksPerHost: rph, BasePort: 9000})
		if err != nil {
			t.Fatal(err)
		}
		return report.VirtualElapsed.Seconds()
	}
	t4 := run(1)
	t8 := run(2)
	// Each host still executes 1/4 of the pairs; oversubscription should
	// cost little for the compute-bound EP.
	if math.Abs(t8-t4)/t4 > 0.1 {
		t.Fatalf("2 ranks/host %.3fs vs 1 rank/host %.3fs", t8, t4)
	}
}

// TestEmulatedScaleOut: 8 virtual hosts emulated on 4 physical machines —
// a 2:1 virtual-to-physical mapping, the resource-multiplexing case the
// MicroGrid exists for.
func TestEmulatedScaleOut(t *testing.T) {
	emu := AlphaCluster // 4 physical
	m, err := Build(BuildConfig{
		Seed:      6,
		Target:    AlphaCluster.WithProcs(8),
		Emulation: &emu,
		Rate:      0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each physical host carries two virtual hosts at fraction 0.25 each.
	h := m.Grid.Host("vm0")
	if math.Abs(h.Fraction-0.25) > 1e-9 {
		t.Fatalf("fraction = %v", h.Fraction)
	}
	report, err := m.RunApp("ep8", func(ctx *AppContext) error {
		return RunNPB(ctx, "EP", NPBClassS, nil)
	}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Direct 8-host EP-S ≈ 1.77s; the emulated run must agree in virtual
	// time within a few percent (EP barely communicates).
	if math.Abs(report.VirtualElapsed.Seconds()-1.77) > 0.15 {
		t.Fatalf("EP on 8 emulated hosts: %v", report.VirtualElapsed)
	}
}
