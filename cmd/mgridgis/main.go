// Command mgridgis inspects Grid Information Service data: it loads LDIF
// files, runs LDAP-style filter searches, and decodes the MicroGrid's
// virtual-resource record extensions.
//
// Usage:
//
//	mgridgis -demo                                   # print the paper's Fig. 3 records
//	mgridgis -load grid.ldif -filter '(Is_Virtual_Resource=Yes)'
//	mgridgis -load grid.ldif -config Slow_CPU_Configuration
package main

import (
	"flag"
	"fmt"
	"os"

	"microgrid/internal/gis"
	"microgrid/internal/simcore"
)

func main() {
	var (
		demo   = flag.Bool("demo", false, "print the paper's example virtual records")
		load   = flag.String("load", "", "LDIF file to load")
		filter = flag.String("filter", "", "LDAP-style search filter")
		base   = flag.String("base", "", "search base DN (default: whole tree)")
		config = flag.String("config", "", "decode virtual resources of this Configuration_Name")
	)
	flag.Parse()

	server := gis.NewServer()
	if *demo {
		host := gis.VirtualHost{
			Hostname:       "vm.ucsd.edu",
			OrgUnit:        "Concurrent Systems Architecture Group",
			ConfigName:     "Slow_CPU_Configuration",
			MappedPhysical: "csag-226-67.ucsd.edu",
			CPUSpeedMIPS:   10,
			MemoryBytes:    100 << 20,
			VirtualIP:      "1.11.11.2",
		}
		server.Upsert(host.Entry())
		net := gis.VirtualNetwork{
			Prefix:       "1.11.11.0",
			Parent:       "1.11.0.0",
			OrgUnit:      "Concurrent Systems Architecture Group",
			ConfigName:   "Slow_CPU_Configuration",
			Type:         "LAN",
			BandwidthBps: 100e6,
			Delay:        50 * simcore.Millisecond,
		}
		server.Upsert(net.Entry())
		fmt.Print(gis.DumpLDIF(server))
		return
	}

	if *load == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*load)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := gis.LoadLDIF(server, f); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "loaded %d entries\n", server.Len())

	if *config != "" {
		hosts, nets, err := gis.VirtualResources(server, *config)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		for _, h := range hosts {
			fmt.Printf("host %s: %.0f MIPS, %s, on %s, vIP %s\n",
				h.Hostname, h.CPUSpeedMIPS, gis.FormatBytes(h.MemoryBytes),
				h.MappedPhysical, h.VirtualIP)
		}
		for _, n := range nets {
			fmt.Printf("network %s (%s): %s\n", n.Prefix, n.Type, gis.FormatSpeed(n.BandwidthBps, n.Delay))
		}
		return
	}

	var fl gis.Filter
	if *filter != "" {
		fl, err = gis.ParseFilter(*filter)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	}
	results := server.Search(gis.DN(*base), gis.ScopeSubtree, fl)
	if err := gis.WriteLDIF(os.Stdout, results); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
