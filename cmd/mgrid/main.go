// Command mgrid runs the paper's experiments: every table and figure of
// the MicroGrid evaluation, printed as text tables.
//
// Usage:
//
//	mgrid -list
//	mgrid -experiment fig10            # full (paper-scale) run
//	mgrid -experiment fig10 -quick     # reduced problem sizes
//	mgrid -all -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"microgrid"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list experiments and exit")
		expID = flag.String("experiment", "", "experiment id to run (fig05..fig17)")
		all   = flag.Bool("all", false, "run every experiment")
		quick = flag.Bool("quick", false, "reduced problem sizes for fast runs")
		csv   = flag.Bool("csv", false, "emit tables as CSV instead of text")
	)
	flag.Parse()

	if *list {
		fmt.Println("Available experiments:")
		for _, e := range microgrid.Experiments() {
			fmt.Printf("  %s\n", e.ID)
		}
		return
	}

	run := func(id string, fn microgrid.ExperimentFunc) error {
		start := time.Now()
		exp, err := fn(*quick)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if *csv {
			fmt.Printf("# %s — %s\n", exp.ID, exp.Title)
			fmt.Print(exp.Table.CSV())
			fmt.Println()
			return nil
		}
		fmt.Printf("=== %s — %s (wall %.1fs)\n", exp.ID, exp.Title, time.Since(start).Seconds())
		fmt.Print(exp.Table.String())
		for _, n := range exp.Notes {
			fmt.Printf("  note: %s\n", n)
		}
		fmt.Println()
		return nil
	}

	switch {
	case *all:
		for _, e := range microgrid.Experiments() {
			if err := run(e.ID, e.Fn); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
		}
	case *expID != "":
		fn, err := microgrid.GetExperiment(*expID)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if err := run(*expID, fn); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
