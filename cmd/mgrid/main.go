// Command mgrid runs the paper's experiments: every table and figure of
// the MicroGrid evaluation, printed as text tables.
//
// Usage:
//
//	mgrid -list
//	mgrid -experiment fig10              # full (paper-scale) run
//	mgrid -experiment fig10 -quick       # reduced problem sizes
//	mgrid -all -quick -j 8               # whole campaign, 8 workers
//	mgrid -all -quick -out results/      # + campaign.json, timings.csv
//	mgrid -run 'chaos-*' -quick -j 4     # glob-selected sub-campaign
//	mgrid -scenario my.scenario          # run a declarative scenario file
//
// Experiments run on a bounded worker pool (-j), each in its own
// isolated simulation engine, with an optional per-experiment wall-clock
// timeout (-timeout) and one retry on failure. Tables and metrics on
// stdout are deterministic — byte-identical for any -j — and always in
// paper order; progress lines with wall-clock times go to stderr. With
// -all, a failing experiment no longer aborts the run: every experiment
// executes, failures are summarized at the end, and the exit status is
// nonzero if any failed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path"
	"path/filepath"
	"strings"

	"microgrid"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list experiments and exit")
		expID    = flag.String("experiment", "", "experiment id to run (fig05..fig17)")
		all      = flag.Bool("all", false, "run every experiment")
		runGlob  = flag.String("run", "", "run experiments whose id matches this glob (e.g. 'chaos-*')")
		scenFile = flag.String("scenario", "", "run a declarative .scenario file end to end")
		quick    = flag.Bool("quick", false, "reduced problem sizes for fast runs")
		csv      = flag.Bool("csv", false, "emit tables as CSV instead of text")
		jobs     = flag.Int("j", 1, "number of experiments to run concurrently")
		timeout  = flag.Duration("timeout", 0, "per-experiment wall-clock timeout (0 = none)")
		outDir   = flag.String("out", "", "directory for campaign.json and timings.csv artifacts")
		traceOut = flag.String("trace", "", "write a structured trace of the experiment (.jsonl = compact stream, anything else = Chrome/Perfetto JSON)")
		traceCat = flag.String("trace-categories", "all", "trace categories, e.g. 'net,mpi' or 'all,-engine'")
		traceBuf = flag.Int("trace-buf", 0, "trace ring-buffer capacity in events (0 = default 65536)")
		shards   = flag.Int("shards", 0, "simulation engine: 0 = serial (default), N >= 1 = conservative parallel engine with N shards")
		partArg  = flag.String("partition", "", "partition the grid model across shards: 'auto' or 'node=shard,...' (requires -shards >= 2 or a scenario engine line)")
	)
	flag.Parse()

	if *shards < 0 {
		fmt.Fprintln(os.Stderr, "error: -shards must be >= 0")
		os.Exit(1)
	}
	if *shards > 0 {
		microgrid.SetEngineShards(*shards)
	}
	if *partArg != "" {
		pc, err := microgrid.ParsePartitionFlag(*partArg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		microgrid.SetEnginePartition(pc)
	}

	if *list {
		fmt.Println("Available experiments:")
		for _, e := range microgrid.Experiments() {
			fmt.Printf("  %-12s %s\n", e.ID, e.Desc)
		}
		return
	}

	if *scenFile != "" {
		runScenarioFile(*scenFile)
		return
	}

	var tasks []microgrid.CampaignTask
	switch {
	case *all:
		tasks = microgrid.Campaign(*quick)
	case *runGlob != "":
		for _, t := range microgrid.Campaign(*quick) {
			ok, err := path.Match(*runGlob, t.ID)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error: bad -run pattern:", err)
				os.Exit(1)
			}
			if ok {
				tasks = append(tasks, t)
			}
		}
		if len(tasks) == 0 {
			fmt.Fprintf(os.Stderr, "error: -run %q matches no experiments\n", *runGlob)
			os.Exit(1)
		}
	case *expID != "":
		fn, err := microgrid.GetExperiment(*expID)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		q := *quick
		tasks = []microgrid.CampaignTask{{
			ID: *expID,
			Run: func(ctx context.Context) (*microgrid.Experiment, error) {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				return fn(q)
			},
		}}
	default:
		flag.Usage()
		os.Exit(2)
	}

	if *traceOut != "" {
		// A traced invocation must select exactly one experiment: the
		// export is labeled by build order, which is only deterministic
		// (and therefore byte-identical at any -j) within one experiment.
		if len(tasks) != 1 {
			ids := make([]string, len(tasks))
			for i, t := range tasks {
				ids[i] = t.ID
			}
			fmt.Fprintf(os.Stderr, "error: -trace requires exactly one experiment, but this invocation selects %d: %s\nuse -experiment or a -run glob matching one id\n",
				len(tasks), strings.Join(ids, ", "))
			os.Exit(1)
		}
		mask, err := microgrid.ParseTraceCategories(*traceCat)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		microgrid.EnableTracing(microgrid.TraceConfig{Mask: mask, BufSize: *traceBuf})
	}

	results := microgrid.RunCampaign(context.Background(), tasks, microgrid.CampaignOptions{
		Workers: *jobs,
		Timeout: *timeout,
		OnResult: func(r microgrid.CampaignResult) {
			fmt.Fprintf(os.Stderr, "[%s] %s (wall %.1fs, attempts %d)\n",
				r.Status, r.ID, r.Wall.Seconds(), r.Attempts)
		},
	})

	// Deterministic report: paper order, no wall-clock times.
	var failed []microgrid.CampaignResult
	for _, r := range results {
		if r.Status != microgrid.CampaignOK {
			failed = append(failed, r)
			continue
		}
		exp := r.Experiment
		if *csv {
			fmt.Printf("# %s — %s\n", exp.ID, exp.Title)
			fmt.Print(exp.Table.CSV())
			fmt.Println()
			continue
		}
		fmt.Printf("=== %s — %s\n", exp.ID, exp.Title)
		fmt.Print(exp.Table.String())
		for _, n := range exp.Notes {
			fmt.Printf("  note: %s\n", n)
		}
		fmt.Println()
	}

	if *outDir != "" {
		if err := microgrid.WriteCampaignArtifacts(*outDir, results, *quick); err != nil {
			fmt.Fprintln(os.Stderr, "error writing artifacts:", err)
			os.Exit(1)
		}
	}

	if *traceOut != "" {
		write := microgrid.WriteTraceChrome
		if strings.HasSuffix(*traceOut, ".jsonl") {
			write = microgrid.WriteTraceJSONL
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error writing trace:", err)
			os.Exit(1)
		}
		werr := write(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "error writing trace:", werr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n", *traceOut)
	}

	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "%d/%d experiments failed:\n", len(failed), len(results))
		for _, r := range failed {
			fmt.Fprintf(os.Stderr, "  %s [%s]: %v\n", r.ID, r.Status, r.Err)
		}
		os.Exit(1)
	}
}

// runScenarioFile loads a declarative scenario and runs it end to end:
// parse, validate, build the virtual grid (arming any chaos schedule),
// run the workload, and print a deterministic report.
func runScenarioFile(file string) {
	s, err := microgrid.LoadScenario(file)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	// Relative references inside the scenario (a gis file= path) resolve
	// against the scenario file's own directory.
	report, err := microgrid.RunScenarioEnv(s, microgrid.ScenarioEnv{BaseDir: filepath.Dir(file)})
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	// The same formatter renders mgridd's stdout artifact, so the CLI
	// and the service can never drift apart.
	fmt.Print(microgrid.FormatScenarioReport(s.Name, report))
}
