// Command mgridnet probes simulated network topologies: it loads a
// topology file (or the built-in vBNS testbed), reports routed paths, and
// runs a ping/throughput probe between two hosts. A chaos schedule can be
// replayed against the topology while the probe runs (or on its own),
// printing the resulting link-state timeline.
//
// Usage:
//
//	mgridnet -vbns -from ucsd0 -to uiuc0
//	mgridnet -topo testbed.txt -from a -to b -bytes 1048576
//	mgridnet -vbns -chaos faults.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"microgrid/internal/chaos"
	"microgrid/internal/netsim"
	"microgrid/internal/simcore"
	"microgrid/internal/topology"
	"microgrid/internal/trace"
)

func main() {
	var (
		topoFile = flag.String("topo", "", "topology file to load")
		vbns     = flag.Bool("vbns", false, "use the built-in vBNS testbed")
		wanBps   = flag.Float64("wan", topology.OC12Bps, "vBNS bottleneck link bandwidth (bps)")
		from     = flag.String("from", "", "source host")
		to       = flag.String("to", "", "destination host")
		bytes    = flag.Int("bytes", 1<<20, "transfer size for the throughput probe")
		chaosF   = flag.String("chaos", "", "chaos schedule file to replay against the topology")
		traceOut = flag.String("trace", "", "write a structured trace (.jsonl = compact stream, anything else = Chrome/Perfetto JSON)")
		traceCat = flag.String("trace-categories", "all", "trace categories, e.g. 'net,link'")
		traceBuf = flag.Int("trace-buf", 0, "trace ring-buffer capacity in events (0 = default 65536)")
	)
	flag.Parse()

	eng := simcore.NewEngine(1)
	writeTrace := func() {}
	if *traceOut != "" {
		mask, err := trace.ParseCategories(*traceCat)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		rec := trace.NewRecorder(*traceBuf, mask)
		rec.Label = "mgridnet"
		eng.SetRecorder(rec)
		writeTrace = func() {
			write := trace.WriteChrome
			if strings.HasSuffix(*traceOut, ".jsonl") {
				write = trace.WriteJSONL
			}
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error writing trace:", err)
				os.Exit(1)
			}
			werr := write(f, []trace.Run{rec.Snapshot()})
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				fmt.Fprintln(os.Stderr, "error writing trace:", werr)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "trace written to %s\n", *traceOut)
		}
	}
	var nw *netsim.Network
	var err error
	switch {
	case *vbns:
		nw, err = topology.BuildVBNS(eng, topology.VBNSConfig{HostsPerSite: 2, BottleneckBps: *wanBps})
	case *topoFile != "":
		// LoadSpec reports parse errors positioned as file:line.
		spec, perr := topology.LoadSpec(*topoFile)
		if perr != nil {
			fmt.Fprintln(os.Stderr, "error:", perr)
			os.Exit(1)
		}
		nw, err = spec.Build(eng)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	fmt.Println("nodes:")
	for _, n := range nw.Nodes() {
		kind := "host"
		if n.Router {
			kind = "router"
		}
		fmt.Printf("  %-14s %-7s %s\n", n.Name, kind, n.Addr)
	}

	// Optional fault replay: armed now, fired while the engine runs (with
	// the probe, if one was requested).
	var inj *chaos.Injector
	if *chaosF != "" {
		s, err := chaos.LoadSchedule(*chaosF)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		inj = chaos.NewInjector(eng, nw, nil)
		if err := inj.Arm(s); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	}
	reportChaos := func() {
		if inj == nil {
			return
		}
		fmt.Println("\nchaos timeline:")
		fmt.Print(chaos.FormatTimeline(inj.Timeline()))
		fmt.Println("\nfinal link states:")
		for _, l := range nw.Links() {
			state := "up"
			if l.Down() {
				state = "down"
			} else if l.Degraded() {
				state = "degraded"
			}
			fmt.Printf("  %-14s -- %-14s %s\n", l.A.Name, l.B.Name, state)
		}
	}

	if *from == "" || *to == "" {
		if inj != nil {
			if err := eng.Run(); err != nil {
				fmt.Fprintln(os.Stderr, "simulation:", err)
				os.Exit(1)
			}
			reportChaos()
			writeTrace()
		}
		return
	}
	src, dst := nw.Node(*from), nw.Node(*to)
	if src == nil || dst == nil {
		fmt.Fprintln(os.Stderr, "error: unknown -from/-to host")
		os.Exit(1)
	}
	delay, hops, ok := nw.PathDelay(src, dst)
	if !ok {
		fmt.Fprintln(os.Stderr, "error: no route")
		os.Exit(1)
	}
	bw, _ := nw.PathBottleneckBps(src, dst)
	fmt.Printf("\npath %s -> %s: %d hops, %v one-way, %.1f Mb/s bottleneck\n",
		*from, *to, hops, delay, bw/1e6)

	// Live probe: one message of -bytes over the reliable transport.
	ln, err := dst.Listen(9)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	var done simcore.Time
	eng.Spawn("server", func(p *simcore.Proc) {
		c, err := ln.Accept(p)
		if err != nil {
			return
		}
		if _, err := c.Recv(p); err == nil {
			done = p.Now()
		}
	})
	eng.Spawn("client", func(p *simcore.Proc) {
		c, err := src.Dial(p, dst.Addr, 9)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dial:", err)
			return
		}
		if err := c.Send(p, *bytes, nil); err != nil {
			fmt.Fprintln(os.Stderr, "send:", err)
		}
	})
	if err := eng.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "simulation:", err)
		os.Exit(1)
	}
	if done == 0 {
		reportChaos() // the faults are usually why the probe died
		writeTrace()
		fmt.Fprintln(os.Stderr, "probe failed")
		os.Exit(1)
	}
	secs := done.Seconds()
	fmt.Printf("probe: %d bytes delivered in %v (%.2f Mb/s incl. handshake)\n",
		*bytes, done, float64(*bytes)*8/secs/1e6)

	fmt.Println("\nlink utilization during the probe:")
	for _, l := range nw.Links() {
		for _, d := range l.Stats() {
			if d.Sent == 0 {
				continue
			}
			fmt.Printf("  %-14s -> %-14s %6d pkts  %9d B  %5.1f%% busy\n",
				d.From, d.To, d.Sent, d.BytesSent, 100*d.Utilization)
		}
	}
	reportChaos()
	writeTrace()
}
