// Command benchjson converts `go test -bench` output into a JSON artifact
// and gates CI on benchmark regressions.
//
// Capture (reads bench output on stdin, aggregates -count repeats):
//
//	go test -run '^$' -bench '...' -benchmem -benchtime=1x -count=3 . |
//	    go run ./cmd/benchjson -out BENCH_3.json -note "linux ci"
//
// Compare (exit 1 when any baseline bench regresses ns/op beyond the
// threshold, or disappears):
//
//	go run ./cmd/benchjson -compare BENCH_3.json,BENCH_3.new.json -threshold 20
//
// ns/op against a baseline pinned on a different machine is apples to
// oranges; -same-procs turns the comparison into a no-op unless the two
// artifacts record the same CPU count.
//
// Speedup gate (exit 1 when the parallel benchmark fails to beat the
// serial one by -min-ratio; a no-op below -min-procs CPUs, since there
// is no multi-core scaling to measure on a single core):
//
//	go run ./cmd/benchjson -speedup BENCH_8.new.json \
//	    -serial 'BenchmarkPartitionedFig14/serial' \
//	    -parallel 'BenchmarkPartitionedFig14/shards=4' \
//	    -metric events/s -min-ratio 1.5 -min-procs 4
//
// Ceiling gate (exit 1 when a benchmark's custom metric exceeds an
// absolute limit — machine-independent budgets like bytes per declared
// host):
//
//	go run ./cmd/benchjson -ceiling BENCH_10.new.json \
//	    -bench BenchmarkScale100k -metric bytes/host -limit 8192
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"microgrid/internal/benchjson"
)

func main() {
	out := flag.String("out", "", "write aggregated results from stdin to this JSON file")
	note := flag.String("note", "", "provenance note stored in the artifact")
	procs := flag.Int("procs", 0, "CPU count recorded in the artifact (0 = this machine's)")
	compare := flag.String("compare", "", "OLD,NEW JSON files to diff benchstat-style")
	threshold := flag.Float64("threshold", 20, "ns/op regression threshold in percent for -compare")
	sameProcs := flag.Bool("same-procs", false, "skip -compare when the artifacts' CPU counts differ")
	speedup := flag.String("speedup", "", "JSON artifact to check a parallel-vs-serial speedup ratio in")
	ceiling := flag.String("ceiling", "", "JSON artifact to check an absolute metric ceiling in")
	bench := flag.String("bench", "", "benchmark name for -ceiling")
	limit := flag.Float64("limit", 0, "upper bound on -metric for -ceiling")
	serial := flag.String("serial", "", "serial benchmark name for -speedup")
	parallel := flag.String("parallel", "", "parallel benchmark name for -speedup")
	metric := flag.String("metric", "", "higher-is-better metric for -speedup (empty = ns/op ratio)")
	minRatio := flag.Float64("min-ratio", 1.5, "minimum parallel/serial speedup for -speedup")
	minProcs := flag.Int("min-procs", 4, "-speedup passes trivially on artifacts from machines with fewer CPUs")
	flag.Parse()

	switch {
	case *out != "":
		results, err := benchjson.Parse(os.Stdin)
		if err != nil {
			fatal(err)
		}
		if len(results) == 0 {
			fatal(fmt.Errorf("no benchmark lines on stdin"))
		}
		if *procs == 0 {
			*procs = runtime.NumCPU()
		}
		agg := benchjson.Aggregate(results)
		if err := benchjson.WriteFile(*out, benchjson.File{Note: *note, Procs: *procs, Results: agg}); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d benchmarks, %d CPUs)\n", *out, len(agg), *procs)
	case *speedup != "":
		f, err := benchjson.ReadFile(*speedup)
		if err != nil {
			fatal(err)
		}
		if f.Procs < *minProcs {
			fmt.Printf("speedup gate skipped: %s was produced on %d CPUs (< %d); no multi-core scaling to measure\n",
				*speedup, f.Procs, *minProcs)
			return
		}
		ratio, err := benchjson.Speedup(f, *serial, *parallel, *metric)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("speedup %s vs %s: %.2fx (min %.2fx, %d CPUs)\n",
			*parallel, *serial, ratio, *minRatio, f.Procs)
		if ratio < *minRatio {
			fmt.Fprintf(os.Stderr, "benchjson: speedup %.2fx below the %.2fx floor\n", ratio, *minRatio)
			os.Exit(1)
		}
	case *ceiling != "":
		f, err := benchjson.ReadFile(*ceiling)
		if err != nil {
			fatal(err)
		}
		if err := benchjson.Ceiling(f, *bench, *metric, *limit); err != nil {
			fatal(err)
		}
		fmt.Printf("ok: %s %s within the %g ceiling\n", *bench, *metric, *limit)
	case *compare != "":
		parts := strings.Split(*compare, ",")
		if len(parts) != 2 {
			fatal(fmt.Errorf("-compare wants OLD,NEW"))
		}
		oldF, err := benchjson.ReadFile(parts[0])
		if err != nil {
			fatal(err)
		}
		newF, err := benchjson.ReadFile(parts[1])
		if err != nil {
			fatal(err)
		}
		if *sameProcs && oldF.Procs != newF.Procs {
			fmt.Printf("compare skipped: %s pinned on %d CPUs, %s measured on %d — ns/op not comparable\n",
				parts[0], oldF.Procs, parts[1], newF.Procs)
			return
		}
		deltas, regressed := benchjson.Compare(oldF.Results, newF.Results, *threshold)
		fmt.Print(benchjson.FormatTable(deltas))
		if regressed {
			fmt.Fprintf(os.Stderr, "benchjson: ns/op regression beyond %+.0f%% vs %s\n", *threshold, parts[0])
			os.Exit(1)
		}
		fmt.Printf("ok: no ns/op regression beyond %+.0f%%\n", *threshold)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
