// Command benchjson converts `go test -bench` output into a JSON artifact
// and gates CI on benchmark regressions.
//
// Capture (reads bench output on stdin, aggregates -count repeats):
//
//	go test -run '^$' -bench '...' -benchmem -benchtime=1x -count=3 . |
//	    go run ./cmd/benchjson -out BENCH_3.json -note "linux ci"
//
// Compare (exit 1 when any baseline bench regresses ns/op beyond the
// threshold, or disappears):
//
//	go run ./cmd/benchjson -compare BENCH_3.json,BENCH_3.new.json -threshold 20
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"microgrid/internal/benchjson"
)

func main() {
	out := flag.String("out", "", "write aggregated results from stdin to this JSON file")
	note := flag.String("note", "", "provenance note stored in the artifact")
	compare := flag.String("compare", "", "OLD,NEW JSON files to diff benchstat-style")
	threshold := flag.Float64("threshold", 20, "ns/op regression threshold in percent for -compare")
	flag.Parse()

	switch {
	case *out != "":
		results, err := benchjson.Parse(os.Stdin)
		if err != nil {
			fatal(err)
		}
		if len(results) == 0 {
			fatal(fmt.Errorf("no benchmark lines on stdin"))
		}
		agg := benchjson.Aggregate(results)
		if err := benchjson.WriteFile(*out, benchjson.File{Note: *note, Results: agg}); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(agg))
	case *compare != "":
		parts := strings.Split(*compare, ",")
		if len(parts) != 2 {
			fatal(fmt.Errorf("-compare wants OLD,NEW"))
		}
		oldF, err := benchjson.ReadFile(parts[0])
		if err != nil {
			fatal(err)
		}
		newF, err := benchjson.ReadFile(parts[1])
		if err != nil {
			fatal(err)
		}
		deltas, regressed := benchjson.Compare(oldF.Results, newF.Results, *threshold)
		fmt.Print(benchjson.FormatTable(deltas))
		if regressed {
			fmt.Fprintf(os.Stderr, "benchjson: ns/op regression beyond %+.0f%% vs %s\n", *threshold, parts[0])
			os.Exit(1)
		}
		fmt.Printf("ok: no ns/op regression beyond %+.0f%%\n", *threshold)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
