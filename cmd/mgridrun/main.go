// Command mgridrun runs a workload on a virtual grid defined entirely by
// GIS records — the MicroGrid's production workflow: describe the grid in
// LDIF, pick a configuration, pick an application.
//
// Usage:
//
//	mgridrun -gis grid.ldif -config Slow_CPU_Configuration -app EP -class S
//	mgridrun -gis grid.ldif -config MyGrid -app wavetoy -size 50 -steps 100
//	mgridrun -gis grid.ldif -config MyGrid -app EP -phys "m1=533,m2=533" -rate 0.5
//	mgridrun -scenario run.scenario
//
// Without -phys the target is modeled directly (the reference run); with
// -phys the named physical machines emulate the virtual grid at -rate.
// With -scenario, the whole run — grid, workload, policies, faults — comes
// from one declarative file and every other flag is ignored.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"microgrid"
)

func main() {
	var (
		gisFile = flag.String("gis", "", "LDIF file defining the virtual grid")
		config  = flag.String("config", "", "Configuration_Name to instantiate")
		app     = flag.String("app", "EP", "workload: EP, BT, LU, MG, IS, or wavetoy")
		class   = flag.String("class", "S", "NPB class: S, W, A, B")
		size    = flag.Int("size", 50, "WaveToy grid edge")
		steps   = flag.Int("steps", 100, "WaveToy steps")
		physArg = flag.String("phys", "", "emulation calibration: name=MIPS,name=MIPS (empty = direct model)")
		rate    = flag.Float64("rate", 0, "simulation rate (0 = fastest feasible)")
		seed    = flag.Int64("seed", 1, "simulation seed")
		scen    = flag.String("scenario", "", "declarative .scenario file (overrides all other flags)")
		shards  = flag.Int("shards", 0, "simulation engine: 0 = serial (default), N >= 1 = conservative parallel engine with N shards")
		partArg = flag.String("partition", "", "partition the grid model across shards: 'auto' or 'node=shard,...'")
	)
	flag.Parse()
	if *shards < 0 {
		fail(fmt.Errorf("-shards must be >= 0"))
	}
	if *shards > 0 {
		microgrid.SetEngineShards(*shards)
	}
	if *partArg != "" {
		pc, err := microgrid.ParsePartitionFlag(*partArg)
		if err != nil {
			fail(err)
		}
		microgrid.SetEnginePartition(pc)
	}
	if *scen != "" {
		s, err := microgrid.LoadScenario(*scen)
		if err != nil {
			fail(err)
		}
		report, err := microgrid.RunScenarioEnv(s, microgrid.ScenarioEnv{BaseDir: filepath.Dir(*scen)})
		if err != nil {
			fail(err)
		}
		printReport(report)
		return
	}
	if *gisFile == "" || *config == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*gisFile)
	if err != nil {
		fail(err)
	}
	server, err := microgrid.LoadGIS(f)
	f.Close()
	if err != nil {
		fail(err)
	}

	opts := microgrid.GISBuildOptions{Seed: *seed, Rate: *rate}
	if *physArg != "" {
		opts.PhysMIPS = map[string]float64{}
		for _, pair := range strings.Split(*physArg, ",") {
			name, mips, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if !ok {
				fail(fmt.Errorf("bad -phys entry %q", pair))
			}
			v, err := strconv.ParseFloat(mips, 64)
			if err != nil {
				fail(fmt.Errorf("bad MIPS in %q", pair))
			}
			opts.PhysMIPS[name] = v
		}
	}

	m, err := microgrid.BuildFromGIS(server, *config, opts)
	if err != nil {
		fail(err)
	}
	mode := "direct (physical grid model)"
	if !m.IsDirect() {
		mode = fmt.Sprintf("emulated at rate %.3f", m.Rate())
	}
	fmt.Fprintf(os.Stderr, "grid %q: %d hosts, %s\n", m.ConfigName, len(m.Hosts), mode)

	var fn func(ctx *microgrid.AppContext) error
	switch strings.ToLower(*app) {
	case "wavetoy":
		fn = func(ctx *microgrid.AppContext) error {
			return microgrid.RunWaveToy(ctx, microgrid.WaveToyParams{GridEdge: *size, Steps: *steps})
		}
	default:
		bench := strings.ToUpper(*app)
		cls := microgrid.NPBClass((*class)[0])
		fn = func(ctx *microgrid.AppContext) error {
			return microgrid.RunNPB(ctx, bench, cls, nil)
		}
	}

	report, err := m.RunApp(*app, fn, microgrid.RunOptions{})
	if err != nil {
		fail(err)
	}
	printReport(report)
}

func printReport(report *microgrid.Report) {
	fmt.Printf("virtual time:    %.3f s\n", report.VirtualElapsed.Seconds())
	fmt.Printf("emulation time:  %.3f s\n", report.PhysicalElapsed.Seconds())
	fmt.Printf("network:         %d packets delivered, %d dropped\n",
		report.Net.PacketsDelivered, report.Net.PacketsDropped)
	hosts := make([]string, 0, len(report.HostUtilization))
	for h := range report.HostUtilization {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	for _, h := range hosts {
		fmt.Printf("utilization:     %-24s %.1f%%\n", h, 100*report.HostUtilization[h])
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
