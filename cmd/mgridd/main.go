// Command mgridd runs the MicroGrid as a long-lived campaign service:
// an HTTP/JSON API that accepts declarative .scenario submissions from
// many clients, executes them on a bounded simulation worker pool behind
// a deterministic fair-share queue, and memoizes results in a
// content-addressed cache — repeated or overlapping submissions of the
// same scenario return the stored campaign.json, stdout, and trace
// artifacts without re-simulating.
//
// Usage:
//
//	mgridd                                # listen on :8427, 2 workers
//	mgridd -listen :9000 -workers 8
//	mgridd -queue-depth 32 -cache 1024
//	mgridd -run-timeout 5m -base-dir ./scenarios
//
// API (see DESIGN.md §11 and the README's "Running as a service"):
//
//	POST   /v1/runs                  submit scenario text (? quick=1, client=KEY or X-Client-Key)
//	GET    /v1/runs                  list runs
//	GET    /v1/runs/{id}             run status
//	DELETE /v1/runs/{id}             cancel a queued or running run
//	GET    /v1/runs/{id}/campaign.json
//	GET    /v1/runs/{id}/stdout
//	GET    /v1/runs/{id}/trace.jsonl
//	GET    /v1/runs/{id}/stream      NDJSON status stream until terminal
//	GET    /metrics                  Prometheus text exposition
//	GET    /healthz
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"microgrid/internal/service"
)

func main() {
	var (
		listen     = flag.String("listen", ":8427", "address to serve HTTP on")
		workers    = flag.Int("workers", 2, "concurrently executing simulations")
		queueDepth = flag.Int("queue-depth", 16, "queued runs allowed per client key before 429")
		runTimeout = flag.Duration("run-timeout", 10*time.Minute, "per-run wall-clock timeout (0 = none)")
		cacheSize  = flag.Int("cache", 256, "result-cache capacity in entries")
		baseDir    = flag.String("base-dir", ".", "directory resolving relative file references in scenarios")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "error: mgridd takes no positional arguments")
		os.Exit(2)
	}

	s := service.New(service.Config{
		Workers:      *workers,
		QueueDepth:   *queueDepth,
		RunTimeout:   *runTimeout,
		CacheEntries: *cacheSize,
		BaseDir:      *baseDir,
	})
	defer s.Close()

	fmt.Fprintf(os.Stderr, "mgridd %s listening on %s (%d workers, queue depth %d/client, cache %d entries)\n",
		service.Version, *listen, *workers, *queueDepth, *cacheSize)
	if err := http.ListenAndServe(*listen, s); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
