// Command mgridtrace analyzes structured trace streams written by
// mgrid -trace / mgridnet -trace (the compact JSONL format).
//
// Usage:
//
//	mgridtrace summary trace.jsonl          # event counts per category/name + dropped
//	mgridtrace summary -partition-scenario s.scenario trace.jsonl
//	                                        # + per-shard events / busy time / cross-shard sends
//	mgridtrace critical-path trace.jsonl    # longest MPI dependency chain
//	mgridtrace links trace.jsonl            # per-link utilization timeline
//	mgridtrace hosts trace.jsonl            # per-host CPU busy fractions
//	mgridtrace chrome trace.jsonl out.json  # convert to Chrome/Perfetto JSON
//	mgridtrace check trace.jsonl            # exit 1 if the ring dropped events
//
// Reading "-" takes the stream from stdin. All output is deterministic
// for a given input.
//
// check is the gate the fuzzing oracle and CI use before trusting a
// trace: a stream whose footer reports dropped events only reflects
// the retained window, so any analysis of it would validate a
// truncated record.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"microgrid"
	"microgrid/internal/trace"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: mgridtrace <subcommand> [flags] <trace.jsonl>

subcommands:
  summary        event counts per category and name, buffer and drop stats
  critical-path  longest dependency chain through the MPI events
  links          per-link traffic, busy fraction and utilization timeline
  hosts          per-host CPU busy fraction from scheduler slices
  chrome         convert JSONL to Chrome trace-event JSON (Perfetto)
  check          verify the stream is complete; exit 1 on dropped events
`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	sub := os.Args[1]
	fs := flag.NewFlagSet(sub, flag.ExitOnError)
	var (
		maxSteps = fs.Int("max-steps", 40, "critical-path: steps to print (0 = all)")
		buckets  = fs.Int("buckets", 20, "links: timeline buckets")
		partScen = fs.String("partition-scenario", "", "summary: scenario file whose partition attributes events to PDES shards")
	)
	fs.Parse(os.Args[2:])
	if fs.NArg() < 1 {
		usage()
	}

	runs, err := readRuns(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	// Analyses consume (T, Seq)-ordered events; the wire carries emission
	// order (spans appear when they end).
	for i := range runs {
		trace.SortByTime(runs[i].Events)
	}

	switch sub {
	case "summary":
		fmt.Print(trace.Summary(runs))
		if *partScen != "" {
			s, err := microgrid.LoadScenario(*partScen)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			shardOf, lookahead, shards, err := microgrid.PartitionPreview(s)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			if shardOf == nil {
				fmt.Fprintf(os.Stderr, "note: scenario %s partitions nothing (serial engine, no partition line, or a single cluster)\n", s.Name)
				break
			}
			fmt.Printf("partition: %d shards, lookahead %s\n", shards, lookahead)
			fmt.Print(trace.ShardSummary(runs, shardOf))
		}
	case "critical-path":
		for _, run := range runs {
			fmt.Print(trace.FormatCriticalPath(run, *maxSteps))
		}
	case "links":
		for _, run := range runs {
			fmt.Print(trace.LinkReport(run, *buckets))
		}
	case "hosts":
		for _, run := range runs {
			fmt.Print(trace.HostReport(run))
		}
	case "check":
		bad := false
		for _, run := range runs {
			label := run.Label
			if label == "" {
				label = "trace"
			}
			if run.Dropped > 0 {
				bad = true
				fmt.Printf("%s: INCOMPLETE — %d of %d events dropped (buffer %d)\n",
					label, run.Dropped, run.Emitted, run.BufSize)
			} else {
				fmt.Printf("%s: complete — %d events\n", label, run.Emitted)
			}
		}
		if bad {
			os.Exit(1)
		}
	case "chrome":
		out := os.Stdout
		if fs.NArg() >= 2 {
			f, err := os.Create(fs.Arg(1))
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := trace.WriteChrome(out, runs); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	default:
		usage()
	}
}

func readRuns(path string) ([]trace.Run, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return trace.ReadJSONL(r)
}
