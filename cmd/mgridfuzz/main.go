// Command mgridfuzz drives the differential/metamorphic fuzzing loop:
// for each seed it generates a random-but-valid scenario
// (internal/scengen), runs it under the serial, sharded, and
// auto-partitioned engines (plus the flow-level network model when the
// draw is fault-free), and checks every oracle property
// (internal/oracle) — trace completeness, packet conservation, retry
// termination, chaos schedule bounds, cross-engine byte identity, and
// the flow-vs-packet envelope.
//
// Usage:
//
//	mgridfuzz -seeds 0:50 -quick            # CI range, small workload knobs
//	mgridfuzz -seeds 100:200 -j 8           # wider sweep, 8 seeds in flight
//	mgridfuzz -seeds 7:8 -v                 # one seed, print its scenario
//
// The seed range is half-open (a:b runs a..b-1). The summary is
// deterministic for a given range regardless of -j. On any violation
// the process exits 1 and leaves a repro bundle per failing seed under
// -out (scenario text, violations, and each variant's report, chaos
// timeline, and trace JSONL) so the failure replays without the fuzzer.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"

	"microgrid/internal/oracle"
	"microgrid/internal/scengen"
)

func main() {
	var (
		seeds   = flag.String("seeds", "0:20", "half-open seed range a:b")
		jobs    = flag.Int("j", runtime.NumCPU(), "seeds checked concurrently")
		quick   = flag.Bool("quick", false, "smaller workload knobs (CI)")
		outDir  = flag.String("out", "fuzz-failures", "repro bundle directory")
		verbose = flag.Bool("v", false, "print each generated scenario")
	)
	flag.Parse()

	lo, hi, err := parseRange(*seeds)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(2)
	}
	opts := scengen.Options{Quick: *quick}

	results := make([]*oracle.SeedResult, hi-lo)
	var wg sync.WaitGroup
	work := make(chan int64)
	if *jobs < 1 {
		*jobs = 1
	}
	for w := 0; w < *jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seed := range work {
				results[seed-lo] = oracle.CheckSeed(seed, opts)
			}
		}()
	}
	for seed := lo; seed < hi; seed++ {
		work <- seed
	}
	close(work)
	wg.Wait()

	failed := 0
	for _, r := range results {
		status := "pass"
		if r.Failed() {
			failed++
			status = fmt.Sprintf("FAIL (%d violations)", len(r.Violations))
		}
		fmt.Printf("seed %4d  %-8s %-9s chaos=%-7s engine=%-12s %s\n",
			r.Seed, r.Scenario.Workload.Kind, r.Meta.Family,
			orDash(r.Meta.ChaosFlavor), engineLabel(r), status)
		if *verbose {
			fmt.Println(indent(r.Text))
		}
		for _, v := range r.Violations {
			fmt.Printf("    %s\n", v)
		}
		if r.Failed() {
			if err := writeBundle(*outDir, r); err != nil {
				fmt.Fprintf(os.Stderr, "error: repro bundle for seed %d: %v\n", r.Seed, err)
			}
		}
	}
	fmt.Printf("%d seeds, %d failed\n", hi-lo, failed)
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "repro bundles under %s/\n", *outDir)
		os.Exit(1)
	}
}

func parseRange(s string) (lo, hi int64, err error) {
	if _, err = fmt.Sscanf(s, "%d:%d", &lo, &hi); err != nil {
		return 0, 0, fmt.Errorf("bad -seeds %q (want a:b)", s)
	}
	if lo < 0 || hi <= lo {
		return 0, 0, fmt.Errorf("bad -seeds %q (want 0 <= a < b)", s)
	}
	return lo, hi, nil
}

func engineLabel(r *oracle.SeedResult) string {
	s := r.Scenario
	switch {
	case s.EngineShards == 0:
		return "serial"
	case s.Partition != nil:
		return fmt.Sprintf("shards=%d+auto", s.EngineShards)
	default:
		return fmt.Sprintf("shards=%d", s.EngineShards)
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func indent(s string) string {
	return "    " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n    ")
}

// writeBundle leaves everything needed to replay the failure:
// the scenario (runnable via mgrid -scenario), the violation list, and
// each variant's captured artifacts.
func writeBundle(dir string, r *oracle.SeedResult) error {
	bd := filepath.Join(dir, fmt.Sprintf("seed-%d", r.Seed))
	if err := os.MkdirAll(bd, 0o755); err != nil {
		return err
	}
	write := func(name, data string) error {
		return os.WriteFile(filepath.Join(bd, name), []byte(data), 0o644)
	}
	if err := write("scenario.scenario", r.Text); err != nil {
		return err
	}
	var vb strings.Builder
	for _, v := range r.Violations {
		fmt.Fprintln(&vb, v)
	}
	if err := write("violations.txt", vb.String()); err != nil {
		return err
	}
	for _, v := range r.Variants {
		name := strings.NewReplacer("=", "", "+", "-").Replace(v.Variant)
		if v.Err != nil {
			if err := write(name+".error.txt", v.Err.Error()+"\n"); err != nil {
				return err
			}
			continue
		}
		if err := write(name+".report.txt", v.ReportText); err != nil {
			return err
		}
		if v.TimelineText != "" {
			if err := write(name+".timeline.txt", v.TimelineText); err != nil {
				return err
			}
		}
		if err := os.WriteFile(filepath.Join(bd, name+".trace.jsonl"), v.TraceJSONL, 0o644); err != nil {
			return err
		}
	}
	return nil
}
