module microgrid

go 1.22
