package microgrid

import (
	"io"

	"microgrid/internal/core"
	"microgrid/internal/gis"
)

// GIS is a Grid Information Service directory server (the MDS analog):
// LDAP-style records with the MicroGrid's virtual-resource extensions.
type GIS = gis.Server

// GISEntry is one directory record.
type GISEntry = gis.Entry

// VirtualHostRecord and VirtualNetworkRecord are the typed forms of the
// paper's Fig. 3 record extensions.
type (
	VirtualHostRecord    = gis.VirtualHost
	VirtualNetworkRecord = gis.VirtualNetwork
)

// NewGIS returns an empty directory.
func NewGIS() *GIS { return gis.NewServer() }

// LoadGIS parses LDIF-like text into a new directory.
func LoadGIS(r io.Reader) (*GIS, error) {
	s := gis.NewServer()
	if err := gis.LoadLDIF(s, r); err != nil {
		return nil, err
	}
	return s, nil
}

// DumpGIS renders a directory as LDIF text.
func DumpGIS(s *GIS) string { return gis.DumpLDIF(s) }

// GISBuildOptions tune BuildFromGIS.
type GISBuildOptions = core.GISBuildOptions

// BuildFromGIS constructs a MicroGrid from the virtual-resource records of
// one configuration in a GIS directory — the paper's bootstrap path: the
// virtual grid's hosts, addresses, speeds, memories, physical mappings
// and network parameters all come from the directory.
func BuildFromGIS(server *GIS, configName string, opts GISBuildOptions) (*MicroGrid, error) {
	return core.BuildFromGIS(server, configName, opts)
}
