package microgrid

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// tracedChaosCrashJSONL runs the chaos-crash experiment (quick) under
// global tracing on a campaign pool of the given width and returns the
// exported JSONL bytes.
func tracedChaosCrashJSONL(t *testing.T, workers int) []byte {
	t.Helper()
	ResetTracing()
	defer ResetTracing()
	EnableTracing(TraceConfig{Mask: TraceAll})
	fn, err := GetExperiment("chaos-crash")
	if err != nil {
		t.Fatal(err)
	}
	tasks := []CampaignTask{{
		ID: "chaos-crash",
		Run: func(ctx context.Context) (*Experiment, error) {
			return fn(true)
		},
	}}
	results := RunCampaign(context.Background(), tasks, CampaignOptions{Workers: workers})
	if results[0].Status != CampaignOK {
		t.Fatalf("chaos-crash failed: %+v", results[0].Err)
	}
	var buf bytes.Buffer
	if err := WriteTraceJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceDeterminismAcrossWorkers is the tracing acceptance criterion:
// one seed produces a byte-identical JSONL export regardless of the
// campaign worker count — including under injected faults, whose chaos
// events must appear in the stream.
func TestTraceDeterminismAcrossWorkers(t *testing.T) {
	j1 := tracedChaosCrashJSONL(t, 1)
	j4 := tracedChaosCrashJSONL(t, 4)
	if len(j1) == 0 {
		t.Fatal("empty trace export")
	}
	if !bytes.Equal(j1, j4) {
		t.Fatalf("trace export differs across worker counts: %d vs %d bytes", len(j1), len(j4))
	}
	out := string(j1)
	if !strings.Contains(out, `"cat":"chaos","name":"crash"`) {
		t.Error("chaos crash event missing from trace")
	}
	for _, want := range []string{`"cat":"mpi","name":"send"`, `"cat":"net","name":"hop"`,
		`"cat":"globus","name":"submit"`, `"cat":"cpu","name":"slice"`} {
		if !strings.Contains(out, want) {
			t.Errorf("expected event %s missing from trace", want)
		}
	}
	// Every recorder footer must surface its drop counter (satellite:
	// no silent caps).
	if !strings.Contains(out, `"dropped":`) {
		t.Error("drop counter missing from export footers")
	}
}

// TestTraceSnapshotsLabeledByBuildOrder checks that the global registry
// labels recorders by build order so exports sort deterministically.
func TestTraceSnapshotsLabeledByBuildOrder(t *testing.T) {
	ResetTracing()
	defer ResetTracing()
	EnableTracing(TraceConfig{Mask: TraceAll})
	for i := 0; i < 2; i++ {
		m, err := Build(BuildConfig{Seed: 7, Target: AlphaCluster})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.RunApp("t", func(ctx *AppContext) error {
			ctx.Proc.ComputeVirtualSeconds(0.01)
			return ctx.Comm.Barrier()
		}, RunOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	snaps := TraceSnapshots()
	if len(snaps) != 2 {
		t.Fatalf("snapshots = %d, want 2", len(snaps))
	}
	for i, want := range []string{"00:Alpha Cluster", "01:Alpha Cluster"} {
		if snaps[i].Label != want {
			t.Errorf("snapshot %d label = %q, want %q", i, snaps[i].Label, want)
		}
		if snaps[i].Emitted == 0 {
			t.Errorf("snapshot %d recorded no events", i)
		}
	}
}
